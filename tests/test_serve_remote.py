"""Multi-host remote backend: wire format, validation, and failover.

The distributed-execution contract (ISSUE 10 / ROADMAP "multi-host render
farm"): tiles cross a host boundary over a stdlib TCP transport, and every
guarantee the in-process pools made survives the network being a network:

* **wire format** — length-prefixed, versioned frames round-trip
  ``TileTask``/``TileResult`` exactly; a partial read buffers and never
  yields a corrupt object; a schema-version skew fails with a typed
  :class:`WireVersionError` naming both versions; garbage framing is a
  :class:`TornFrameError`, not an unpickle crash;
* **validation** — remote-only knobs are refused loudly on the in-process
  backends, network faults are refused on pools with no connections to
  drop, and unknown backend names list every valid name;
* **failover** — a killed host, a torn connection, and a silent partition
  are all detected (connection close / torn frame / heartbeat deadline),
  in-flight tiles redispatch to survivors, and frames stay bit-identical
  to direct renders with zero failed jobs;
* **degradation** — with every host gone, ``local_fallback=True`` renders
  stranded tiles in-process rather than stalling;
* **telemetry** — host_losses / host_reconnects / local_fallback_tiles /
  dropped_backend_events flow through ``ServerStats.as_dict()`` and stay
  zero on the serial backend.

Scenes are the same tiny 16^3/24px ones as the other serve test modules.
Every cluster here is loopback (``LocalHostCluster``) — real sockets, real
process boundaries, no real network needed.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig
from repro.serve import (
    FaultPlan,
    FrameDecoder,
    JobState,
    LocalHostCluster,
    ProcessPoolBackend,
    RemoteBackend,
    RenderServer,
    SceneStore,
    ThreadPoolBackend,
    TileResult,
    TileTask,
    TornFrameError,
    WireVersionError,
    encode_frame,
    make_backend,
)
from repro.serve.backends import SerialBackend
from repro.serve.remote import MSG_RESULT, MSG_TASK, WIRE_VERSION

SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}

#: 576px frames at this tile size shard into 8 tiles — enough in-flight
#: structure for a mid-job host loss to strand work worth redispatching.
TILE = 77

#: Fast heartbeats so dead-host detection fits in test time; the timeout
#: still dwarfs a tiny-scene tile render, so no false positives.
FAST_BEAT = {"heartbeat_interval_s": 0.1, "heartbeat_timeout_s": 2.0}


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


@pytest.fixture(scope="module")
def direct_frames():
    """Direct engine renders to compare served frames against, bit for bit."""
    store = make_store()
    return {
        (scene, "dense"): store.get(scene, "dense")
        .engine.render(camera_indices=(0,), chunk_size=TILE)
        .image
        for scene in ("lego", "ficus")
    }


# ----------------------------------------------------------------------
# Wire format (satellite: versioned frames, round-trip, torn frames)
# ----------------------------------------------------------------------

def test_frame_round_trip_for_task_and_result():
    task = TileTask("job-1", 3, "lego", "dense", 0, 77, 154)
    image = np.arange(77 * 24 * 3, dtype=np.float32).reshape(77, 24, 3)
    result = TileResult(
        job_id="job-1", tile_index=3, worker_id=1, image=image, service_s=0.25,
    )
    decoder = FrameDecoder()
    decoder.feed(encode_frame(MSG_TASK, task))
    decoder.feed(encode_frame(MSG_RESULT, result))
    frames = list(decoder.frames())
    assert [msg_type for msg_type, _ in frames] == [MSG_TASK, MSG_RESULT]
    assert frames[0][1] == task
    round_tripped = frames[1][1]
    assert round_tripped.job_id == result.job_id
    assert round_tripped.tile_index == result.tile_index
    assert round_tripped.image.tobytes() == image.tobytes()  # bit-exact payload
    assert decoder.pending_bytes == 0


def test_partial_frame_buffers_and_never_yields():
    """A torn read keeps the tail buffered: the decoder yields nothing
    until the frame is whole, and the completed frame is exact."""
    task = TileTask("job-1", 0, "lego", "dense", 0, 0, 77)
    frame = encode_frame(MSG_TASK, task)
    decoder = FrameDecoder()
    for cut in (1, 7, 8, 9, len(frame) - 1):
        decoder.feed(frame[:cut])
        assert list(decoder.frames()) == []
        assert decoder.pending_bytes == cut
        decoder.feed(frame[cut:])
        assert list(decoder.frames()) == [(MSG_TASK, task)]
        assert decoder.pending_bytes == 0


def test_version_mismatch_is_typed_and_names_both_versions():
    frame = bytearray(encode_frame(MSG_TASK, TileTask("j", 0, "lego", "dense", 0, 0, 77)))
    frame[1] = WIRE_VERSION + 6  # doctor the schema-version byte
    decoder = FrameDecoder()
    decoder.feed(bytes(frame))
    with pytest.raises(WireVersionError) as excinfo:
        list(decoder.frames())
    assert excinfo.value.local_version == WIRE_VERSION
    assert excinfo.value.peer_version == WIRE_VERSION + 6
    message = str(excinfo.value)
    assert str(WIRE_VERSION) in message and str(WIRE_VERSION + 6) in message
    assert "same release" in message  # tells the operator what to do


def test_garbage_framing_is_a_torn_frame_not_an_unpickle():
    decoder = FrameDecoder()
    decoder.feed(b"\x00" * 32)  # wrong magic byte
    with pytest.raises(TornFrameError, match="frame alignment"):
        list(decoder.frames())


# ----------------------------------------------------------------------
# make_backend validation (satellite: remote-only knobs refused loudly)
# ----------------------------------------------------------------------

def test_remote_knobs_are_refused_on_in_process_backends():
    for name in ("serial", "thread", "process"):
        with pytest.raises(ValueError, match=rf"{name} backend does not support"):
            make_backend(name, hosts=["127.0.0.1:7000"])
        with pytest.raises(ValueError, match="heartbeat_interval_s"):
            make_backend(name, heartbeat_interval_s=0.5)
        with pytest.raises(ValueError, match="local_fallback"):
            make_backend(name, local_fallback=True)


def test_unknown_backend_error_lists_remote():
    with pytest.raises(ValueError, match="remote"):
        make_backend("quantum")


def test_remote_backend_validates_its_own_knobs():
    with pytest.raises(ValueError, match="at least one host"):
        make_backend("remote")
    with pytest.raises(ValueError, match="at least one host"):
        RemoteBackend(hosts=[])
    with pytest.raises(ValueError, match="host:port"):
        RemoteBackend(hosts=["no-port-here"])
    with pytest.raises(ValueError, match="heartbeat_timeout_s"):
        RemoteBackend(hosts=["h:1"], heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5)
    with pytest.raises(ValueError, match="backoff_max_s"):
        RemoteBackend(hosts=["h:1"], backoff_base_s=1.0, backoff_max_s=0.1)
    # Hedging/stealing and num_workers are pool-only vocabulary here.
    with pytest.raises(ValueError, match="not supported on the remote backend"):
        make_backend("remote", hosts=["h:1"], hedge_multiplier=2.0)
    with pytest.raises(ValueError, match="not supported on the remote backend"):
        make_backend("remote", hosts=["h:1"], steal_interval_s=0.5)
    with pytest.raises(ValueError, match="num_workers"):
        make_backend("remote", hosts=["h:1"], num_workers=4)


def test_network_faults_are_refused_on_in_process_pools():
    plan = FaultPlan(drop_host=0)
    with pytest.raises(ValueError, match="remote backend"):
        ProcessPoolBackend(num_workers=2, fault_plan=plan)
    with pytest.raises(ValueError, match="remote backend"):
        ThreadPoolBackend(num_workers=2, fault_plan=FaultPlan(partition_host=1))
    with pytest.raises(ValueError, match="remote backend"):
        make_backend("process", num_workers=2,
                     fault_plan=FaultPlan(delay_host=0, delay_host_s=0.1))
    assert plan.network_faults() == ("drop_host",)
    assert FaultPlan(kill_worker=0).network_faults() == ()


def test_network_fault_plan_validates_and_pickles():
    plan = FaultPlan(drop_host=1, drop_connection_after_tiles=2,
                     partition_host=0, delay_host=2, delay_host_s=0.05)
    assert pickle.loads(pickle.dumps(plan)) == plan
    assert set(plan.network_faults()) == {"drop_host", "partition_host", "delay_host"}
    with pytest.raises(ValueError, match="drop_connection_after_tiles"):
        FaultPlan(drop_host=0, drop_connection_after_tiles=0)
    with pytest.raises(ValueError, match="delay_host_s"):
        FaultPlan(delay_host=0, delay_host_s=-0.5)


def test_unpicklable_store_spec_fails_before_any_socket():
    store = SceneStore(
        scene_kwargs=dict(SCENE_KWARGS), config=SERVE_CONFIG,
        loader=lambda name, pipeline: None,  # closures cannot cross a socket
    )
    backend = RemoteBackend(hosts=["127.0.0.1:7999"])
    with pytest.raises(TypeError, match="picklable"):
        backend.start(store)


# ----------------------------------------------------------------------
# Event-ring overflow accounting (satellite: dropped_events)
# ----------------------------------------------------------------------

def test_event_ring_overflow_is_counted_not_silent():
    backend = SerialBackend()
    capacity = backend._events.maxlen
    for index in range(capacity + 250):
        backend._emit("redispatch", worker=0, note=index)
    assert backend.dropped_events == 250
    assert len(backend.drain_events()) == capacity
    # Draining frees the ring: new events no longer count as dropped.
    backend._emit("redispatch", worker=0)
    assert backend.dropped_events == 250


def test_dropped_events_flow_through_server_stats():
    store = make_store()
    with RenderServer(store) as server:
        job = server.submit("lego", "dense", tile_size=TILE)
        server.run_until_idle()
        assert server.poll(job).state is JobState.DONE
        server.backend.dropped_events = 7  # simulate a storm the deque ate
        stats = server.stats()
    assert stats.dropped_backend_events == 7
    assert stats.as_dict()["dropped_backend_events"] == 7


REMOTE_COUNTERS = ("host_losses", "host_reconnects", "local_fallback_tiles",
                   "dropped_backend_events")


def test_remote_counters_zero_on_serial_backend():
    store = make_store()
    with RenderServer(store) as server:
        server.submit("lego", "dense", tile_size=TILE)
        server.run_until_idle()
        as_dict = server.stats().as_dict()
    for counter in REMOTE_COUNTERS:
        assert as_dict[counter] == 0, counter


# ----------------------------------------------------------------------
# End-to-end over loopback hosts
# ----------------------------------------------------------------------

def test_two_hosts_serve_bit_identical_frames(direct_frames):
    """The happy path: two loopback agents rebuild their shards from the
    spec and serve frames byte-equal to direct renders, with sticky
    affinity keeping each key on one host."""
    with LocalHostCluster(2) as cluster:
        backend = make_backend("remote", hosts=cluster.addresses)
        with RenderServer(make_store(), backend=backend, default_tile_size=TILE) as server:
            jobs = {}
            for scene in ("lego", "ficus"):
                for _ in range(2):
                    jobs[server.submit(scene, "dense", tile_size=TILE)] = (scene, "dense")
            server.run_until_idle()
            for job, key in jobs.items():
                view = server.poll(job)
                assert view.state is JobState.DONE, view.error
                assert server.result(job).image.tobytes() == direct_frames[key].tobytes()
            stats = server.stats()
    assert stats.completed == 4
    assert stats.failed == 0
    assert stats.host_losses == 0
    assert stats.backend == "remote"


def test_host_kill_mid_job_fails_over_bit_identically(direct_frames):
    """Kill a host agent mid-job: the closed connection condemns the host,
    its in-flight tiles redispatch to the survivor, and every job completes
    byte-equal to direct renders — the scheduler never sees an exception."""
    with LocalHostCluster(2) as cluster:
        backend = make_backend(
            "remote", hosts=cluster.addresses, **FAST_BEAT,
            fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=2),
        )
        with RenderServer(make_store(), backend=backend, default_tile_size=TILE) as server:
            jobs = {}
            for scene in ("lego", "ficus"):
                for _ in range(2):
                    jobs[server.submit(scene, "dense", tile_size=TILE)] = (scene, "dense")
            server.run_until_idle()
            for job, key in jobs.items():
                view = server.poll(job)
                assert view.state is JobState.DONE, view.error
                assert server.result(job).image.tobytes() == direct_frames[key].tobytes()
            stats = server.stats()
    assert stats.host_losses >= 1
    assert stats.redispatched_tiles >= 1
    assert stats.failed == 0
    assert stats.completed == 4
    as_dict = stats.as_dict()
    assert as_dict["host_losses"] == stats.host_losses
    assert as_dict["redispatched_tiles"] == stats.redispatched_tiles


def test_torn_connection_reconnects_with_backoff(direct_frames):
    """The drop fault sends *half* a result frame and slams the connection:
    the scheduler must detect the torn frame (never parsing it), fail the
    tiles over, then reconnect to the still-running agent and count it."""
    with LocalHostCluster(2) as cluster:
        backend = make_backend(
            "remote", hosts=cluster.addresses, **FAST_BEAT, backoff_base_s=0.05,
            fault_plan=FaultPlan(drop_host=0, drop_connection_after_tiles=2),
        )
        with RenderServer(make_store(), backend=backend, default_tile_size=TILE) as server:
            jobs = {}
            for scene in ("lego", "ficus"):
                for _ in range(2):
                    jobs[server.submit(scene, "dense", tile_size=TILE)] = (scene, "dense")
            server.run_until_idle()
            for job, key in jobs.items():
                view = server.poll(job)
                assert view.state is JobState.DONE, view.error
                assert server.result(job).image.tobytes() == direct_frames[key].tobytes()
            stats = server.stats()
    assert stats.host_losses >= 1
    assert stats.host_reconnects >= 1
    assert stats.redispatched_tiles >= 1
    assert stats.failed == 0
    assert stats.completed == 4


def test_local_fallback_degrades_gracefully_when_all_hosts_die():
    """One host, killed after its first tile, no replacement: with
    ``local_fallback=True`` the stranded tiles render on an in-process
    shard instead of waiting out the backoff forever."""
    with LocalHostCluster(1) as cluster:
        backend = make_backend(
            "remote", hosts=cluster.addresses, local_fallback=True,
            heartbeat_interval_s=0.1, heartbeat_timeout_s=1.5,
            fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=1),
        )
        with RenderServer(make_store(), backend=backend, default_tile_size=TILE) as server:
            job = server.submit("lego", "dense", tile_size=TILE)
            server.run_until_idle()
            view = server.poll(job)
            assert view.state is JobState.DONE, view.error
            stats = server.stats()
    assert stats.host_losses >= 1
    assert stats.local_fallback_tiles >= 1
    assert stats.failed == 0
    assert stats.completed == 1


def test_remote_close_with_hosts_already_dead_does_not_hang():
    """close() with a killed cluster must not block on dead sockets."""
    cluster = LocalHostCluster(2)
    try:
        backend = make_backend("remote", hosts=cluster.addresses, **FAST_BEAT)
        backend.start(make_store())
        backend.submit(TileTask("job-z", 0, "lego", "dense", 0, 0, TILE))
        cluster.kill(0)
        cluster.kill(1)
        start = time.monotonic()
        backend.close()
        assert time.monotonic() - start < 10.0
    finally:
        cluster.close()
