"""Tests for the analysis/experiment drivers."""

import pytest

from repro.analysis.comparison import (
    area_power_breakdowns,
    compare_against_edge_platforms,
    comparison_table,
)
from repro.analysis.memory import (
    average_reduction,
    encoding_overhead_report,
    memory_reduction_study,
)
from repro.analysis.profiling import platform_table, runtime_distribution_study, sparsity_study
from repro.analysis.quality import psnr_study
from repro.analysis.reporting import format_mapping, format_table
from repro.analysis.sweep import hash_table_size_sweep, subgrid_sweep
from repro.hardware.accelerator import SpNeRFAccelerator


@pytest.fixture(scope="module")
def accelerator():
    return SpNeRFAccelerator()


class TestProfiling:
    def test_platform_table_rows(self):
        rows = platform_table()
        assert [r["platform"] for r in rows] == ["A100", "Jetson Orin NX", "Jetson Xavier NX"]
        assert rows[2]["dram_bandwidth_gbps"] == pytest.approx(59.7)

    def test_runtime_distribution_fractions(self, paper_workload):
        rows = runtime_distribution_study([paper_workload])
        for row in rows:
            total = row.memory_fraction + row.compute_fraction + row.other_fraction
            assert total == pytest.approx(1.0)
        by_name = {r.platform: r for r in rows}
        assert by_name["Jetson Xavier NX"].memory_fraction > by_name["A100"].memory_fraction

    def test_sparsity_study(self, small_scene, sparse_scene):
        rows = sparsity_study([small_scene, sparse_scene])
        assert len(rows) == 2
        for row in rows:
            assert row["nonzero_fraction"] + row["sparsity"] == pytest.approx(1.0)
            assert row["nonzero_fraction"] < 0.25


class TestMemoryAnalysis:
    def test_memory_reduction_positive(self, spnerf_bundle):
        results = memory_reduction_study([spnerf_bundle])
        assert results[0].reduction_factor > 1.0
        assert results[0].spnerf_breakdown["total"] == results[0].spnerf_bytes

    def test_average_reduction(self, spnerf_bundle):
        results = memory_reduction_study([spnerf_bundle])
        assert average_reduction(results) == pytest.approx(results[0].reduction_factor)
        assert average_reduction([]) == 0.0

    def test_encoding_overhead_report(self, small_scene):
        rows = encoding_overhead_report([small_scene])
        assert rows[0]["coo_overhead_kb"] > rows[0]["csr_overhead_kb"] / 10
        assert rows[0]["coo_lookups"] >= 1.0


class TestQualityAnalysis:
    def test_psnr_study_ordering(self, spnerf_bundle):
        results = psnr_study([spnerf_bundle], num_pixels=400, seed=1)
        row = results[0]
        # Masked SpNeRF must be comparable to VQRF; unmasked must be clearly worse.
        assert row.psnr_spnerf_masked > row.psnr_spnerf_unmasked
        assert row.psnr_spnerf_masked > row.psnr_vqrf - 5.0
        assert row.masking_gain_db > 0.0


class TestSweeps:
    def test_hash_table_sweep_saturates(self, spnerf_bundle):
        rows = hash_table_size_sweep(
            spnerf_bundle,
            table_sizes=(64, 4096),
            num_subgrids=8,
            num_pixels=300,
        )
        assert rows[-1]["psnr"] >= rows[0]["psnr"] - 0.5
        assert rows[-1]["collision_rate"] <= rows[0]["collision_rate"]

    def test_subgrid_sweep_monotone_memory(self, spnerf_bundle):
        rows = subgrid_sweep(
            spnerf_bundle,
            subgrid_counts=(1, 8),
            hash_table_size=512,
            num_pixels=300,
        )
        assert rows[1]["memory_bytes"] > rows[0]["memory_bytes"]


class TestComparison:
    def test_edge_platform_comparison(self, accelerator, paper_workload):
        rows = compare_against_edge_platforms(accelerator, [paper_workload])
        row = rows[0]
        assert row.speedup_vs_xnx > 10.0
        assert row.speedup_vs_onx > 5.0
        assert row.energy_eff_vs_xnx > row.speedup_vs_xnx  # power also improves
        assert row.speedup_vs_xnx > row.speedup_vs_onx

    def test_comparison_table_structure(self, accelerator, paper_workload):
        table = comparison_table(accelerator, [paper_workload])
        names = [row["accelerator"] for row in table.rows]
        assert names == ["RT-NeRF.Edge", "NeuRex.Edge", "SpNeRF (Ours)"]
        assert table.speedup_over("NeuRex.Edge") > table.speedup_over("RT-NeRF.Edge")
        assert table.energy_efficiency_gain_over("RT-NeRF.Edge") > 1.0

    def test_area_power_breakdowns(self, accelerator, paper_workload):
        result = area_power_breakdowns(accelerator, paper_workload)
        assert sum(result["area_fraction"].values()) == pytest.approx(1.0)
        assert sum(result["power_fraction"].values()) == pytest.approx(1.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.5], ["long-cell", 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_mapping(self):
        text = format_mapping({"x": 1, "y": 2.0})
        assert "x" in text and "y" in text
