"""Tests for the unified 18-bit address space and the occupancy bitmap."""

import numpy as np
import pytest

from repro.core.addressing import (
    CODEBOOK_REGION_SIZE,
    UNIFIED_ADDRESS_BITS,
    UnifiedAddressSpace,
)
from repro.core.bitmap import OccupancyBitmap


class TestUnifiedAddressSpace:
    def test_paper_constants(self):
        assert UNIFIED_ADDRESS_BITS == 18
        assert CODEBOOK_REGION_SIZE == 4096
        space = UnifiedAddressSpace()
        assert space.capacity == 2 ** 18
        assert space.true_grid_capacity == 2 ** 18 - 4096

    def test_codebook_region_is_identity(self):
        space = UnifiedAddressSpace(codebook_size=4096)
        idx = np.array([0, 17, 4095])
        assert np.array_equal(space.encode_codebook(idx), idx)

    def test_true_grid_region_offset(self):
        space = UnifiedAddressSpace(codebook_size=4096)
        rows = np.array([0, 5, 100])
        unified = space.encode_true_grid(rows)
        assert np.array_equal(unified, rows + 4096)

    def test_decode_splits_regions(self):
        space = UnifiedAddressSpace(codebook_size=4096)
        unified = np.array([10, 4095, 4096, 5000])
        is_cb, local = space.decode(unified)
        assert list(is_cb) == [True, True, False, False]
        assert list(local) == [10, 4095, 0, 904]

    def test_decode_encode_roundtrip(self):
        space = UnifiedAddressSpace(codebook_size=256, address_bits=12)
        rows = np.arange(100)
        is_cb, local = space.decode(space.encode_true_grid(rows))
        assert not np.any(is_cb)
        assert np.array_equal(local, rows)

    def test_out_of_range_rejected(self):
        space = UnifiedAddressSpace(codebook_size=256, address_bits=10)
        with pytest.raises(ValueError):
            space.encode_codebook(np.array([256]))
        with pytest.raises(ValueError):
            space.encode_true_grid(np.array([1024 - 256]))
        with pytest.raises(ValueError):
            space.decode(np.array([1024]))

    def test_codebook_must_fit(self):
        with pytest.raises(ValueError):
            UnifiedAddressSpace(codebook_size=1024, address_bits=10)


class TestOccupancyBitmap:
    def test_memory_is_one_bit_per_vertex(self):
        bitmap = OccupancyBitmap(32, np.zeros((0, 3), dtype=int))
        assert bitmap.memory_bytes == 32 ** 3 // 8

    def test_lookup_matches_positions(self, rng):
        positions = rng.integers(0, 16, size=(200, 3))
        positions = np.unique(positions, axis=0)
        bitmap = OccupancyBitmap(16, positions)
        assert bitmap.num_occupied == positions.shape[0]
        assert np.all(bitmap.lookup(positions))

    def test_lookup_empty_vertices_false(self, rng):
        positions = np.array([[1, 1, 1], [2, 3, 4]])
        bitmap = OccupancyBitmap(8, positions)
        others = np.array([[0, 0, 0], [7, 7, 7], [1, 1, 2]])
        assert not np.any(bitmap.lookup(others))

    def test_out_of_range_lookup_is_false(self):
        bitmap = OccupancyBitmap(8, np.array([[1, 1, 1]]))
        assert not bitmap.lookup(np.array([[8, 0, 0], [-1, 2, 2]])).any()

    def test_to_dense_roundtrip(self, rng):
        positions = np.unique(rng.integers(0, 12, size=(64, 3)), axis=0)
        bitmap = OccupancyBitmap(12, positions)
        dense = bitmap.to_dense()
        assert dense.sum() == positions.shape[0]
        assert np.all(dense[positions[:, 0], positions[:, 1], positions[:, 2]])

    def test_position_validation(self):
        with pytest.raises(ValueError):
            OccupancyBitmap(8, np.array([[8, 0, 0]]))
        with pytest.raises(ValueError):
            OccupancyBitmap(0, np.zeros((0, 3), dtype=int))

    def test_matches_sparse_grid_bitmap(self, small_sparse_grid):
        bitmap = OccupancyBitmap(
            small_sparse_grid.spec.resolution, small_sparse_grid.positions
        )
        assert np.array_equal(bitmap.to_dense(), small_sparse_grid.occupancy_bitmap())
