"""Integration tests for the end-to-end SpNeRF pipeline."""

import numpy as np
import pytest

from repro.core.config import SpNeRFConfig
from repro.core.pipeline import SpNeRFField, build_spnerf_from_scene
from repro.nerf.metrics import psnr
from repro.nerf.renderer import VolumetricRenderer
from repro.vqrf.model import VQRFField


@pytest.fixture(scope="module")
def rendered_images(small_scene, spnerf_bundle):
    """Reference, VQRF, SpNeRF-masked and SpNeRF-unmasked images of one view."""
    reference = small_scene.reference_image(0)

    def render(field):
        renderer = VolumetricRenderer(field, small_scene.render_config)
        return renderer.render_image(
            small_scene.cameras[0], small_scene.bbox_min, small_scene.bbox_max
        )

    vqrf_img = render(VQRFField(spnerf_bundle.vqrf_model, small_scene.mlp))
    masked_img = render(SpNeRFField(spnerf_bundle.spnerf_model, small_scene.mlp, use_bitmap_masking=True))
    unmasked_img = render(
        SpNeRFField(spnerf_bundle.spnerf_model, small_scene.mlp, use_bitmap_masking=False)
    )
    return reference, vqrf_img, masked_img, unmasked_img


class TestSpNeRFPipeline:
    def test_bundle_components(self, spnerf_bundle, small_scene):
        assert spnerf_bundle.scene is small_scene
        assert spnerf_bundle.spnerf_model.config.num_subgrids == 8

    def test_query_interface(self, spnerf_bundle, rng):
        points = rng.uniform(-1, 1, size=(100, 3))
        dirs = np.tile([[0.0, 0.0, 1.0]], (100, 1))
        density, rgb = spnerf_bundle.field.query(points, dirs)
        assert density.shape == (100,)
        assert rgb.shape == (100, 3)
        assert np.all(rgb >= 0.0) and np.all(rgb <= 1.0)

    def test_spnerf_masked_matches_vqrf_quality(self, rendered_images):
        reference, vqrf_img, masked_img, _ = rendered_images
        psnr_vqrf = psnr(vqrf_img, reference)
        psnr_masked = psnr(masked_img, reference)
        # Bitmap masking keeps SpNeRF within a few dB of the VQRF baseline
        # (Fig. 6(b): "comparable PSNR levels").
        assert psnr_masked > psnr_vqrf - 4.0

    def test_masking_recovers_substantial_psnr(self, rendered_images):
        reference, _, masked_img, unmasked_img = rendered_images
        gain = psnr(masked_img, reference) - psnr(unmasked_img, reference)
        # The paper's core accuracy claim: collisions destroy quality unless
        # the bitmap masks them.
        assert gain > 5.0

    def test_vqrf_baseline_is_reasonable(self, rendered_images):
        reference, vqrf_img, _, _ = rendered_images
        assert psnr(vqrf_img, reference) > 25.0

    def test_reusing_vqrf_model_skips_recompression(self, small_scene, vqrf_model):
        config = SpNeRFConfig(num_subgrids=4, hash_table_size=512, codebook_size=64)
        bundle = build_spnerf_from_scene(small_scene, config, vqrf_model=vqrf_model)
        assert bundle.vqrf_model is vqrf_model
        assert bundle.spnerf_model.config.hash_table_size == 512

    def test_larger_tables_do_not_reduce_quality(self, small_scene, vqrf_model):
        small_cfg = SpNeRFConfig(num_subgrids=8, hash_table_size=128, codebook_size=64)
        large_cfg = SpNeRFConfig(num_subgrids=8, hash_table_size=4096, codebook_size=64)
        reference = small_scene.reference_image(0)

        def render(cfg):
            bundle = build_spnerf_from_scene(small_scene, cfg, vqrf_model=vqrf_model)
            renderer = VolumetricRenderer(bundle.field, small_scene.render_config)
            return renderer.render_image(
                small_scene.cameras[0], small_scene.bbox_min, small_scene.bbox_max
            )

        psnr_small = psnr(render(small_cfg), reference)
        psnr_large = psnr(render(large_cfg), reference)
        assert psnr_large >= psnr_small - 0.5

    def test_decoder_stats_populated_after_render(self, spnerf_bundle, small_scene):
        field = SpNeRFField(spnerf_bundle.spnerf_model, small_scene.mlp)
        renderer = VolumetricRenderer(field, small_scene.render_config)
        renderer.render_image(small_scene.cameras[0], small_scene.bbox_min, small_scene.bbox_max)
        assert field.decoder.stats.num_lookups > 0
