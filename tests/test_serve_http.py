"""Tests for the :mod:`repro.serve.http` serving edge.

Covers the edge's four layers plus this PR's acceptance invariants:

* fairness — token-bucket refill/limiting and weighted deficit-round-robin
  release, both under injected clocks (no sleeps, fully deterministic);
* wire — malformed requests are answered ``400`` and close the connection;
* frontend — submit/poll/result/cancel/stats round trips, every documented
  failure path (bad JSON → 400, unknown scene/pipeline/job → 404, admission
  reject and rate limiting → 429 with ``Retry-After``), SSE streams with
  partial tiles, mid-render failures, disconnect cancellation and a clean
  shutdown drain;
* acceptance — an HTTP-fetched frame is bit-identical to a direct
  :class:`RenderEngine` render (dense and spnerf, serial and process
  backends), an SSE client sees partial tiles before ``done``, and a slow
  client's p95 stays within a constant factor of its solo p95 while a 10x
  greedier client floods the edge.

Scenes are the same tiny 16^3/24px ones as ``test_serve.py`` so the module
stays fast; one store is shared across every front end to reuse bundles.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig, register_pipeline, unregister_pipeline
from repro.nerf.renderer import DenseGridField
from repro.serve import Priority, RenderServer, SceneStore, orbit_workload
from repro.serve.backends import ProcessPoolBackend
from repro.serve.http import (
    DeficitRoundRobin,
    HttpRenderFrontEnd,
    RateLimiter,
    RenderClient,
    TokenBucket,
)
from repro.serve.traffic import http_open_loop

SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}


@pytest.fixture(scope="module")
def store() -> SceneStore:
    return SceneStore(config=SERVE_CONFIG, scene_kwargs=dict(SCENE_KWARGS))


@contextlib.contextmanager
def frontend(store, *, server_kwargs=None, **edge_kwargs):
    """A running front end over a fresh server on the shared store."""
    server = RenderServer(store, **(server_kwargs or {}))
    edge = HttpRenderFrontEnd(server, **edge_kwargs)
    host, port = edge.run_in_thread()
    try:
        yield edge, host, port
    finally:
        edge.shutdown()
        server.close()


@pytest.fixture(scope="module")
def live_edge(store):
    """One shared front end for the read-mostly happy-path tests."""
    with frontend(store, server_kwargs={"default_tile_size": 144}) as running:
        yield running


def run(coro):
    return asyncio.run(coro)


async def raw_exchange(host: str, port: int, payload: bytes) -> bytes:
    """Send raw bytes, return everything the server answers before closing."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        return await asyncio.wait_for(reader.read(), timeout=10.0)
    finally:
        writer.close()
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.wait_closed()


# ----------------------------------------------------------------------
# Fairness primitives (deterministic, no server)
# ----------------------------------------------------------------------

def test_token_bucket_burst_then_sustained_rate():
    bucket = TokenBucket(rate_hz=2.0, capacity=3.0, now=0.0)
    assert [bucket.try_acquire(0.0) for _ in range(4)] == [True, True, True, False]
    assert bucket.retry_after_s(0.0) == pytest.approx(0.5)
    assert not bucket.try_acquire(0.4)
    assert bucket.try_acquire(0.5)  # one token accrued at 2 Hz
    assert bucket.try_acquire(10.0) and bucket.tokens == pytest.approx(2.0)  # capped


def test_rate_limiter_disabled_none_and_per_client_isolation():
    clock = {"now": 0.0}
    limiter = RateLimiter(None)
    assert limiter.check("anyone") == (True, 0.0)
    limiter = RateLimiter(1.0, burst=1.0, clock=lambda: clock["now"])
    assert limiter.check("a")[0] and not limiter.check("a")[0]
    assert limiter.check("b")[0]  # a's empty bucket does not starve b
    admitted, retry = limiter.check("a")
    assert not admitted and retry == pytest.approx(1.0)
    clock["now"] = 1.0
    assert limiter.check("a")[0]


def test_rate_limiter_bounded_client_tracking():
    limiter = RateLimiter(1.0, burst=1.0, max_clients=2, clock=lambda: 0.0)
    assert limiter.check("a")[0] and limiter.check("b")[0]
    assert limiter.check("c")[0]  # evicts "a", the least recently seen
    assert limiter.check("a")[0]  # forgotten => fresh (full) bucket


def test_drr_round_robin_is_fair_across_unequal_backlogs():
    drr = DeficitRoundRobin(quantum=1.0)
    for i in range(10):
        drr.push("greedy", f"g{i}")
    drr.push("polite", "p0")
    released = drr.release(lambda client: True)
    # One round: each client's head fits one quantum => both release exactly one.
    assert ("polite", "p0") in released
    assert sum(1 for client, _ in released if client == "greedy") == 1
    assert drr.queued("greedy") == 9 and drr.queued("polite") == 0


def test_drr_weights_scale_release_share():
    drr = DeficitRoundRobin(quantum=1.0, weights={"vip": 3.0})
    for i in range(6):
        drr.push("vip", f"v{i}")
        drr.push("std", f"s{i}")
    released = drr.release(lambda client: True)
    by_client = {"vip": 0, "std": 0}
    for client, _ in released:
        by_client[client] += 1
    assert by_client == {"vip": 3, "std": 1}


def test_drr_expensive_item_consumes_proportional_turns():
    drr = DeficitRoundRobin(quantum=1.0)
    drr.push("heavy", "big", cost=3.0)
    drr.push("light", "small", cost=1.0)
    first = drr.release(lambda client: True)
    assert ("light", "small") in first and ("heavy", "big") not in first
    # The capped deficit admits the expensive head after bounded extra rounds.
    rounds = 1
    while drr.queued("heavy"):
        drr.release(lambda client: True)
        rounds += 1
        assert rounds < 10
    assert rounds <= 4


def test_drr_gate_blocks_one_client_without_stalling_others():
    drr = DeficitRoundRobin()
    drr.push("blocked", "b0")
    drr.push("free", "f0")
    released = drr.release(lambda client: client != "blocked")
    assert released == [("free", "f0")]
    assert drr.queued("blocked") == 1
    assert drr.release(lambda client: True) == [("blocked", "b0")]


# ----------------------------------------------------------------------
# Wire-level failure paths
# ----------------------------------------------------------------------

def test_malformed_request_line_answers_400(live_edge):
    _, host, port = live_edge
    answer = run(raw_exchange(host, port, b"this is not http\r\n\r\n"))
    assert answer.startswith(b"HTTP/1.1 400 ")


def test_malformed_json_body_answers_400(live_edge):
    _, host, port = live_edge
    body = b"{not json"
    request = (
        b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        + b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
    )
    answer = run(raw_exchange(host, port, request))
    assert answer.startswith(b"HTTP/1.1 400 ")
    assert b"bad_json" in answer


# ----------------------------------------------------------------------
# Frontend round trips and HTTP failure paths
# ----------------------------------------------------------------------

@pytest.mark.parametrize("pipeline", ["dense", "spnerf"])
def test_http_frame_bit_identical_to_direct_render(live_edge, store, pipeline):
    _, host, port = live_edge

    async def fetch():
        async with RenderClient(host, port) as client:
            return await client.render(scene="lego", pipeline=pipeline)

    frame, meta = run(fetch())
    direct = store.get("lego", pipeline).engine.render(camera_indices=(0,), chunk_size=144)
    assert np.array_equal(frame, direct.image)
    assert meta["scene"] == "lego" and meta["pipeline"] == pipeline
    assert meta["num_tiles"] == 4


def test_http_poll_reports_view_fields(live_edge):
    _, host, port = live_edge

    async def scenario():
        async with RenderClient(host, port) as client:
            submitted = await client.submit(scene="lego", pipeline="dense", priority="high")
            assert submitted.status == 202
            job_id = submitted.json()["job_id"]
            view = await client.wait(job_id)
            assert view["state"] == "done"
            assert view["priority"] == int(Priority.HIGH)
            assert view["tiles_done"] == view["tiles_total"] == 4
            assert view["progress"] == 1.0
            stats = await client.stats()
        return stats

    stats = run(scenario())
    assert stats["server"]["completed"] >= 1
    assert stats["edge"]["jobs_submitted"] >= 1
    assert stats["edge"]["responses_by_status"].get("202", 0) >= 1
    assert np.isfinite(stats["edge"]["request_latency_p50_s"])


def test_http_unknown_scene_pipeline_and_job_answer_404(live_edge):
    _, host, port = live_edge

    async def scenario():
        async with RenderClient(host, port) as client:
            missing_scene = await client.submit(scene="atlantis")
            missing_pipeline = await client.submit(scene="lego", pipeline="voxelfm")
            missing_job = await client.poll("job-424242")
            missing_result = await client.result("job-424242")
            missing_route = await client.request("GET", "/v2/jobs")
            bad_method = await client.request("PUT", "/v1/jobs/job-1")
        return missing_scene, missing_pipeline, missing_job, missing_result, missing_route, bad_method

    scene, pipeline, job, result, route, method = run(scenario())
    assert (scene.status, scene.json()["error"]) == (404, "unknown_scene")
    assert (pipeline.status, pipeline.json()["error"]) == (404, "unknown_pipeline")
    assert job.status == 404 and "job-424242" in job.json()["message"]
    assert result.status == 404
    assert route.status == 404
    assert method.status == 405


def test_http_submission_field_validation_answers_400(live_edge):
    _, host, port = live_edge

    async def scenario():
        async with RenderClient(host, port) as client:
            return (
                await client.submit(pipeline="dense"),            # no scene
                await client.submit(scene="lego", camera_index=-1),
                await client.submit(scene="lego", camera_index=99),
                await client.submit(scene="lego", priority="urgent"),
                await client.submit(scene="lego", tile_size=0),
                await client.submit(scene="lego", deadline_s="soon"),
            )

    for response in run(scenario()):
        assert response.status == 400, response.body
        assert response.json()["error"] in ("bad_request", "bad_json")


def test_http_rate_limit_answers_429_with_retry_after(store):
    with frontend(store, rate_limit_hz=0.01, rate_limit_burst=1.0) as (edge, host, port):

        async def scenario():
            async with RenderClient(host, port, api_key="hasty") as client:
                first = await client.submit(scene="lego", pipeline="dense")
                second = await client.submit(scene="lego", pipeline="dense")
            async with RenderClient(host, port, api_key="other") as client:
                other = await client.submit(scene="lego", pipeline="dense")
            return first, second, other

        first, second, other = run(scenario())
        assert first.status == 202
        assert second.status == 429
        assert second.json()["error"] == "rate_limited"
        assert second.json()["retry_after_s"] > 0
        assert int(second.headers["retry-after"]) >= 1
        assert other.status == 202  # rate limits are per client identity
        assert edge.telemetry.rate_limited_429 == 1


def test_http_admission_reject_answers_429_with_retry_after(store):
    server_kwargs = {"max_pending_cost": 0.5, "over_cost_policy": "reject"}
    with frontend(store, server_kwargs=server_kwargs) as (edge, host, port):

        async def scenario():
            async with RenderClient(host, port) as client:
                rejected = await client.submit(scene="lego", pipeline="dense")
                view = await client.poll(rejected.json()["job_id"])
            return rejected, view

        rejected, view = run(scenario())
        assert rejected.status == 429
        assert rejected.json()["error"] == "admission_rejected"
        assert rejected.json()["state"] == "rejected"
        assert int(rejected.headers["retry-after"]) >= 1
        assert view.json()["state"] == "rejected"  # the job is still pollable
        assert edge.telemetry.admission_429 == 1


def test_http_queue_depth_cap_answers_429(store):
    edge_kwargs = {"max_in_flight_per_client": 1, "max_queue_per_client": 1}
    server_kwargs = {"default_tile_size": 2}  # 288 tiles: keeps the first job busy
    with frontend(store, server_kwargs=server_kwargs, **edge_kwargs) as (edge, host, port):

        async def scenario():
            first_client = RenderClient(host, port, api_key="one")
            first = await first_client.submit(scene="lego", pipeline="dense")
            assert first.status == 202  # admitted: now holds the in-flight slot
            # The next submission parks in the DRR queue; issue it in the
            # background so the depth cap is occupied when the third arrives.
            second_client = RenderClient(host, port, api_key="one")
            second_task = asyncio.create_task(
                second_client.submit(scene="lego", pipeline="dense")
            )
            await asyncio.sleep(0.1)
            assert not second_task.done()
            async with RenderClient(host, port, api_key="one") as client:
                third = await client.submit(scene="lego", pipeline="dense")
            second = await second_task
            await first_client.close()
            await second_client.close()
            return first, second, third

        first, second, third = run(scenario())
        assert third.status == 429
        assert third.json()["error"] == "queue_full"
        assert second.status == 202  # the queued one is eventually admitted
        assert edge.telemetry.queue_full_429 == 1


def test_http_cancel_endpoint_cancels_running_job(store):
    with frontend(store, server_kwargs={"default_tile_size": 8}) as (edge, host, port):

        async def scenario():
            async with RenderClient(host, port) as client:
                submitted = await client.submit(scene="lego", pipeline="dense")
                job_id = submitted.json()["job_id"]
                cancelled = await client.cancel(job_id)
                view = await client.wait(job_id)
                conflict = await client.result(job_id)
                again = await client.cancel(job_id)
            return cancelled, view, conflict, again

        cancelled, view, conflict, again = run(scenario())
        assert cancelled.status == 200 and cancelled.json()["cancelled"] is True
        assert view["state"] == "cancelled"
        assert conflict.status == 409
        assert conflict.json()["error"] == "job_not_done"
        assert again.json()["cancelled"] is False  # already terminal
        assert edge.server.stats().cancelled == 1


# ----------------------------------------------------------------------
# Server-sent events
# ----------------------------------------------------------------------

def test_sse_stream_observes_partial_tiles_before_done(live_edge):
    _, host, port = live_edge

    async def scenario():
        events = []
        async with RenderClient(host, port) as client:
            async for event, payload in client.stream(
                submit={"scene": "lego", "pipeline": "dense"}
            ):
                events.append((event, payload))
        return events

    events = run(scenario())
    names = [event for event, _ in events]
    assert names[0] == "accepted"
    assert names[-1] == "done"
    tile_events = [payload for event, payload in events if event == "tile"]
    assert len(tile_events) == 4  # every partial tile, in completion order
    assert [t["tiles_done"] for t in tile_events] == [1, 2, 3, 4]
    spans = {(t["start"], t["stop"]) for t in tile_events}
    assert len(spans) == 4


def test_sse_attach_to_existing_job_streams_remaining_tiles(store):
    with frontend(store, server_kwargs={"default_tile_size": 8}) as (_, host, port):

        async def scenario():
            async with RenderClient(host, port) as client:
                submitted = await client.submit(scene="lego", pipeline="dense")
                job_id = submitted.json()["job_id"]
                events = []
                async for event, payload in client.stream(job_id=job_id):
                    events.append((event, payload))
                missing = None
                try:
                    async for _ in client.stream(job_id="job-777777"):
                        pass
                except Exception as exc:  # noqa: BLE001 - asserting on the message
                    missing = str(exc)
            return events, missing

        events, missing = run(scenario())
        assert events[-1][0] == "done"
        assert any(event == "tile" for event, _ in events)
        assert missing is not None and "404" in missing


def test_sse_stream_data_payload_carries_tile_pixels(live_edge):
    _, host, port = live_edge

    async def scenario():
        async with RenderClient(host, port) as client:
            async for event, payload in client.stream(
                submit={"scene": "lego", "pipeline": "dense"}, include_data=True
            ):
                if event == "tile":
                    return payload
        return None

    payload = run(scenario())
    assert payload is not None
    pixels = np.frombuffer(
        base64.b64decode(payload["data_b64"]), dtype=np.dtype(payload["dtype"])
    )
    assert pixels.size == (payload["stop"] - payload["start"]) * 3
    assert np.isfinite(pixels).all()


def test_sse_mid_render_failure_emits_terminal_failed_event(store):
    calls = {"n": 0}

    @register_pipeline("brittle", description="fails on the second tile")
    def _build_brittle(scene, config):
        inner = DenseGridField(scene.grid, scene.mlp)

        class BrittleField:
            accepts_encoded_dirs = inner.accepts_encoded_dirs
            num_view_frequencies = inner.num_view_frequencies

            def query(self, *args, **kwargs):
                calls["n"] += 1
                if calls["n"] > 1:
                    raise RuntimeError("voxel grid corrupted mid-render")
                return inner.query(*args, **kwargs)

        return BrittleField()

    try:
        with frontend(store, server_kwargs={"default_tile_size": 144}) as (_, host, port):

            async def scenario():
                events = []
                async with RenderClient(host, port) as client:
                    async for event, payload in client.stream(
                        submit={"scene": "lego", "pipeline": "brittle"}
                    ):
                        events.append((event, payload))
                return events

            events = run(scenario())
    finally:
        unregister_pipeline("brittle")
    names = [event for event, _ in events]
    assert names[0] == "accepted"
    assert names.count("tile") == 1  # the first tile rendered fine
    assert names[-1] == "failed"
    assert "corrupted mid-render" in events[-1][1]["error"]


def test_sse_disconnect_mid_stream_cancels_job(store):
    with frontend(store, server_kwargs={"default_tile_size": 4}) as (edge, host, port):

        async def scenario():
            client = RenderClient(host, port)
            stream = client.stream(submit={"scene": "lego", "pipeline": "dense"})
            job_id = None
            async for event, payload in stream:
                if event == "accepted":
                    job_id = payload["job_id"]
                if event == "tile":
                    break
            await stream.aclose()  # hang up mid-render
            view = await client.wait(job_id, timeout_s=30.0)
            stats = await client.stats()
            await client.close()
            return view, stats

        view, stats = run(scenario())
        assert view["state"] == "cancelled"
        assert stats["edge"]["jobs_cancelled_by_disconnect"] == 1
        assert stats["server"]["cancelled"] == 1


def test_shutdown_with_open_streams_drains_cleanly(store):
    server = RenderServer(store, default_tile_size=8)
    edge = HttpRenderFrontEnd(server)
    host, port = edge.run_in_thread()
    try:

        async def scenario():
            events = []
            async with RenderClient(host, port) as client:
                stream = client.stream(submit={"scene": "lego", "pipeline": "dense"})
                async for event, payload in stream:
                    events.append(event)
                    if event == "tile":
                        # Stop the edge from another thread while streaming.
                        stopper = asyncio.create_task(asyncio.to_thread(edge.shutdown))
                        async for later, _ in stream:
                            events.append(later)
                        await stopper
                        break
            return events

        events = run(scenario())
        assert events[-1] == "shutdown"  # terminal event, then a clean close
        with pytest.raises(OSError):
            run(raw_exchange(host, port, b"GET /v1/stats HTTP/1.1\r\n\r\n"))
    finally:
        edge.shutdown()
        server.close()


# ----------------------------------------------------------------------
# Acceptance: process backend bit-identity, fairness under flood
# ----------------------------------------------------------------------

def test_http_frame_bit_identical_over_process_backend(store):
    fresh = SceneStore(config=SERVE_CONFIG, scene_kwargs=dict(SCENE_KWARGS))
    server_kwargs = {"default_tile_size": 97}
    server = RenderServer(
        fresh, backend=ProcessPoolBackend(num_workers=2), **server_kwargs
    )
    edge = HttpRenderFrontEnd(server)
    host, port = edge.run_in_thread()
    try:

        async def fetch():
            async with RenderClient(host, port) as client:
                dense, _ = await client.render(scene="lego", pipeline="dense")
                spnerf, _ = await client.render(scene="lego", pipeline="spnerf")
            return dense, spnerf

        dense, spnerf = run(fetch())
    finally:
        edge.shutdown()
        server.close()
    direct = store.get("lego", "dense").engine.render(camera_indices=(0,), chunk_size=97)
    assert np.array_equal(dense, direct.image)
    direct = store.get("lego", "spnerf").engine.render(camera_indices=(0,), chunk_size=97)
    assert np.array_equal(spnerf, direct.image)


def test_fairness_slow_client_p95_bounded_under_greedy_flood(store):
    server_kwargs = {"default_tile_size": 144}
    edge_kwargs = {"max_in_flight_per_client": 1}
    slow_trace = orbit_workload(
        "lego", "dense", num_cameras=1, num_frames=5,
        frame_interval_s=0.25, client="slow",
    )
    with frontend(store, server_kwargs=server_kwargs, **edge_kwargs) as (_, host, port):
        solo = http_open_loop(host, port, slow_trace, fetch_results=False)
    greedy_trace = orbit_workload(
        "lego", "dense", num_cameras=1, num_frames=50,
        frame_interval_s=0.025, client="greedy",
    )
    with frontend(store, server_kwargs=server_kwargs, **edge_kwargs) as (_, host, port):
        mixed = http_open_loop(host, port, slow_trace + greedy_trace, fetch_results=False)

    def p95(records, client):
        latencies = [
            r["latency_s"] for r in records if r["client"] == client and r["latency_s"]
        ]
        assert latencies, f"no completed requests for {client}"
        return float(np.percentile(latencies, 95))

    solo_p95 = p95(solo, "slow")
    mixed_p95 = p95(mixed, "slow")
    assert all(r["state"] == "done" for r in solo)
    assert all(r["state"] == "done" for r in mixed if r["client"] == "slow")
    # The greedy client floods 10x faster, yet per-client fairness keeps the
    # slow client's tail bounded by a constant factor of its solo latency
    # (generous slack absorbs CI-machine timing noise).
    assert mixed_p95 <= 10.0 * solo_p95 + 0.75, (solo_p95, mixed_p95)
