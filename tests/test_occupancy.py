"""Tests for occupancy-guided rendering (:mod:`repro.nerf.occupancy`).

Three layers of guarantees:

* **Conservativeness** — property tests over random grids, coarsening factors
  and dilations: wherever the index reports "empty", the field provably
  decodes exactly zero (the precondition for every skip being bit-safe).
* **Bit-identity** — every built-in pipeline renders the exact same image
  with occupancy guidance on and off, including through the serving layer
  under the serial and process-pool backends.
* **Bookkeeping** — the new ``num_culled_samples`` / ``num_skipped_rays``
  counters flow through ``RenderResult.as_dict()``, ``ServerStats`` and
  ``workload_from_render``; the scene store accounts the index's memory; and
  ``reset_stats()`` fixes the stale-stats accumulation of direct
  ``render_rays`` callers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    PipelineConfig,
    RenderEngine,
    RenderRequest,
    SpNeRFConfig,
    available_pipelines,
    build_field,
)
from repro.datasets.synthetic import load_scene
from repro.grid.voxel_grid import GridSpec, VoxelGrid
from repro.nerf.mlp import build_decoder_mlp
from repro.nerf.occupancy import OccupancyIndex, build_occupancy_index
from repro.nerf.rays import RayBatch
from repro.nerf.renderer import DenseGridField, VolumetricRenderer
from repro.serve import RenderServer, SceneStore, make_backend

#: Small-but-real configuration for the engine/serving bit-identity tests.
OCC_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}


@pytest.fixture(scope="module")
def occ_scene():
    return load_scene("lego", **SCENE_KWARGS)


def random_grid(rng: np.random.Generator, resolution: int, feature_dim: int = 4) -> VoxelGrid:
    """A random sparse non-negative grid (the repo's density convention)."""
    spec = GridSpec(resolution=resolution, feature_dim=feature_dim)
    grid = VoxelGrid(spec)
    num = int(rng.integers(1, max(2, resolution**3 // 20)))
    pos = rng.integers(0, resolution, size=(num, 3))
    grid.density[pos[:, 0], pos[:, 1], pos[:, 2]] = rng.uniform(0.5, 10.0, size=num)
    # A few feature-only vertices: occupancy must treat them as occupied too.
    fpos = rng.integers(0, resolution, size=(max(1, num // 4), 3))
    grid.features[fpos[:, 0], fpos[:, 1], fpos[:, 2]] = rng.uniform(
        -1.0, 1.0, size=(fpos.shape[0], feature_dim)
    )
    return grid


# ----------------------------------------------------------------------
# Conservativeness properties
# ----------------------------------------------------------------------

class TestOccupancyIndexProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_empty_verdicts_decode_to_exactly_zero(self, seed):
        """Index says empty => the field returns exactly zero density/color."""
        rng = np.random.default_rng(seed)
        resolution = int(rng.integers(6, 24))
        coarsen = int(rng.integers(1, 5))
        dilation = int(rng.integers(0, 3))
        grid = random_grid(rng, resolution)
        index = OccupancyIndex.from_grid(grid, coarsen=coarsen, dilation=dilation)

        field = DenseGridField(grid, build_decoder_mlp(feature_dim=grid.feature_dim))
        points = rng.uniform(-1.4, 1.4, size=(512, 3))  # inside and outside
        dirs = np.tile([[0.0, 0.0, 1.0]], (512, 1))
        density, rgb = field.query(points, dirs)
        mask = index.point_mask(points)

        empty = ~mask
        assert np.all(density[empty] == 0.0)
        assert np.all(rgb[empty] == 0.0)
        # Superset direction: everything non-zero is marked occupied.
        assert np.all(mask[density > 0.0])
        assert np.all(mask[np.any(rgb != 0.0, axis=-1)])

    @pytest.mark.parametrize("coarsen,dilation", [(1, 0), (2, 0), (3, 1), (1, 2)])
    def test_coarsening_and_dilation_only_grow_the_mask(self, coarsen, dilation):
        rng = np.random.default_rng(99)
        grid = random_grid(rng, 12)
        fine = OccupancyIndex.from_grid(grid)
        other = OccupancyIndex.from_grid(grid, coarsen=coarsen, dilation=dilation)
        points = rng.uniform(-1.1, 1.1, size=(400, 3))
        fine_mask = fine.point_mask(points)
        other_mask = other.point_mask(points)
        assert np.all(other_mask[fine_mask])  # never loses an occupied verdict

    def test_clip_rays_interval_covers_every_occupied_sample(self):
        rng = np.random.default_rng(7)
        grid = random_grid(rng, 14)
        index = OccupancyIndex.from_grid(grid, coarsen=2)
        n, s = 128, 48
        origins = rng.uniform(-4.0, 4.0, size=(n, 3))
        dirs = rng.normal(size=(n, 3))
        dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
        near = np.zeros(n)
        far = np.full(n, 10.0)
        t = np.linspace(0.0, 10.0, s)[None, :].repeat(n, axis=0)
        points = origins[:, None, :] + t[..., None] * dirs[:, None, :]

        clip_near, clip_far, hit = index.clip_rays(origins, dirs, near, far)
        mask = index.point_mask(points.reshape(-1, 3)).reshape(n, s)
        occupied_rows, occupied_cols = np.nonzero(mask)
        # Every occupied sample lies on a hit ray, inside the clamped interval.
        assert np.all(hit[occupied_rows])
        assert np.all(t[occupied_rows, occupied_cols] >= clip_near[occupied_rows])
        assert np.all(t[occupied_rows, occupied_cols] <= clip_far[occupied_rows])

    def test_empty_grid_yields_all_misses(self):
        spec = GridSpec(resolution=8, feature_dim=2)
        index = OccupancyIndex.from_grid(VoxelGrid(spec))
        assert index.num_occupied_cells == 0
        assert not index.point_mask(np.zeros((5, 3))).any()
        _, _, hit = index.clip_rays(
            np.zeros((4, 3)), np.tile([[0.0, 0.0, 1.0]], (4, 1)), np.zeros(4), np.full(4, 5.0)
        )
        assert not hit.any()

    def test_cell_mask_matches_interpolation_base_convention(self):
        """Boundary samples use clip(floor, 0, R-2), exactly like Eq. 2."""
        spec = GridSpec(resolution=4, feature_dim=1)
        grid = VoxelGrid(spec)
        grid.density[3, 3, 3] = 1.0  # occupies only the last cell (2,2,2)
        index = OccupancyIndex.from_grid(grid)
        # The grid-coordinate corner (3,3,3) floors to 3, clips to cell 2.
        assert index.cell_mask(np.array([[3.0, 3.0, 3.0]]))[0]
        assert index.cell_mask(np.array([[2.1, 2.1, 2.1]]))[0]
        assert not index.cell_mask(np.array([[1.9, 1.9, 1.9]]))[0]

    def test_memory_and_fraction_reporting(self):
        rng = np.random.default_rng(3)
        grid = random_grid(rng, 10)
        index = OccupancyIndex.from_grid(grid)
        assert index.memory_bytes == index.cells.nbytes > 0
        assert 0.0 < index.occupancy_fraction <= 1.0


# ----------------------------------------------------------------------
# build_occupancy_index dispatch and caching
# ----------------------------------------------------------------------

class TestBuildOccupancyIndex:
    def test_cached_once_per_field(self, occ_scene):
        field = build_field("dense", occ_scene, OCC_CONFIG)
        first = build_occupancy_index(field)
        assert first is not None
        assert build_occupancy_index(field) is first

    def test_spnerf_shares_one_index_with_its_internal_cull(self, occ_scene):
        field = build_field("spnerf", occ_scene, OCC_CONFIG)
        assert field.occupancy_index() is build_occupancy_index(field)

    def test_nomask_spnerf_has_no_sound_occupancy(self, occ_scene):
        field = build_field("spnerf-nomask", occ_scene, OCC_CONFIG)
        assert build_occupancy_index(field) is None

    def test_fields_without_occupancy_grid_render_unguided(self, occ_scene):
        class BareField:
            def query(self, points, view_dirs):
                n = points.shape[0]
                return np.zeros(n), np.zeros((n, 3))

        assert build_occupancy_index(BareField()) is None

    def test_pipeline_config_occupancy_knob_disables_guidance(self, occ_scene):
        field = build_field("dense", occ_scene, OCC_CONFIG.with_updates(occupancy=False))
        assert field.use_occupancy is False
        renderer = VolumetricRenderer(field, occ_scene.render_config)
        assert renderer.occupancy is None


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------

class TestBitIdentity:
    @pytest.fixture(scope="class")
    def engines(self, occ_scene):
        return {
            pipeline: RenderEngine(build_field(pipeline, occ_scene, OCC_CONFIG), occ_scene)
            for pipeline in available_pipelines()
        }

    @pytest.mark.parametrize("pipeline", ["dense", "vqrf", "spnerf", "spnerf-nomask"])
    def test_occupancy_on_off_images_are_bit_identical(self, engines, pipeline):
        engine = engines[pipeline]
        off = engine.render(RenderRequest(camera_indices=(0,), use_occupancy=False))
        on = engine.render(RenderRequest(camera_indices=(0,)))
        assert on.image.tobytes() == off.image.tobytes()

    def test_guided_render_actually_skips_work(self, engines):
        on = engines["dense"].render(RenderRequest(camera_indices=(0,)))
        off = engines["dense"].render(RenderRequest(camera_indices=(0,), use_occupancy=False))
        assert on.stats.num_culled_samples > 0
        assert on.stats.num_skipped_rays > 0
        assert off.stats.num_culled_samples == 0
        assert off.stats.num_skipped_rays == 0
        assert on.stats.num_samples == off.stats.num_samples  # logical count
        assert on.stats.num_vertex_lookups < off.stats.num_vertex_lookups
        assert on.stats.num_active_samples == off.stats.num_active_samples

    def test_fast_profile_composes_with_occupancy(self, engines):
        """Early termination + occupancy still matches plain early termination
        within the termination threshold's error bound."""
        on = engines["dense"].render(
            RenderRequest(camera_indices=(0,), transmittance_threshold=1e-3)
        )
        off = engines["dense"].render(
            RenderRequest(
                camera_indices=(0,), transmittance_threshold=1e-3, use_occupancy=False
            )
        )
        assert np.allclose(on.image, off.image, atol=1e-2)
        assert on.stats.num_culled_samples > 0

    def test_active_mask_query_is_bit_identical(self, occ_scene, rng):
        field = build_field("dense", occ_scene, OCC_CONFIG)
        index = build_occupancy_index(field)
        points = rng.uniform(-1.2, 1.2, size=(256, 3))
        dirs = np.tile([[0.0, 0.0, 1.0]], (256, 1))
        d_full, rgb_full = field.query(points, dirs)
        full_lookups = field.last_stats.num_vertex_lookups
        d_masked, rgb_masked = field.query(points, dirs, active_mask=index.point_mask(points))
        assert d_masked.tobytes() == d_full.tobytes()
        assert rgb_masked.tobytes() == rgb_full.tobytes()
        assert field.last_stats.num_vertex_lookups <= full_lookups

    def test_stats_surface_through_as_dict(self, engines):
        summary = engines["vqrf"].render(RenderRequest(camera_indices=(0,))).as_dict()
        assert summary["num_culled_samples"] > 0
        assert summary["num_skipped_rays"] > 0


# ----------------------------------------------------------------------
# Renderer bookkeeping: reset_stats
# ----------------------------------------------------------------------

class TestResetStats:
    def test_render_rays_accumulates_until_reset(self, occ_scene):
        renderer = VolumetricRenderer(
            build_field("dense", occ_scene, OCC_CONFIG), occ_scene.render_config
        )
        n = 8
        rays = RayBatch(
            origins=np.tile(occ_scene.cameras[0].position, (n, 1)),
            directions=np.tile([[0.0, 0.0, -1.0]], (n, 1)),
            near=np.zeros(n),
            far=np.full(n, 6.0),
        )
        renderer.render_rays(rays)
        renderer.render_rays(rays)
        assert renderer.last_stats.num_rays == 2 * n  # documented accumulation
        renderer.reset_stats()
        assert renderer.last_stats.num_rays == 0
        renderer.render_rays(rays)
        assert renderer.last_stats.num_rays == n

    def test_render_image_resets_between_frames(self, occ_scene):
        renderer = VolumetricRenderer(
            build_field("dense", occ_scene, OCC_CONFIG), occ_scene.render_config
        )
        camera = occ_scene.cameras[0]
        renderer.render_image(camera, occ_scene.bbox_min, occ_scene.bbox_max)
        first = renderer.last_stats.num_rays
        renderer.render_image(camera, occ_scene.bbox_min, occ_scene.bbox_max)
        assert renderer.last_stats.num_rays == first  # not 2x: reset happened


# ----------------------------------------------------------------------
# Serving: store accounting and served-tile bit-identity
# ----------------------------------------------------------------------

class TestServingWithOccupancy:
    def make_store(self) -> SceneStore:
        return SceneStore(config=OCC_CONFIG, scene_kwargs=dict(SCENE_KWARGS))

    def test_store_accounts_index_memory_with_the_bundle(self):
        store = self.make_store()
        record = store.get("lego", "dense")
        index = build_occupancy_index(record.field)
        assert index is not None  # built eagerly with the bundle
        assert record.memory_bytes == (
            record.field.memory_report()["total"] + index.memory_bytes
        )

    @pytest.mark.parametrize("backend_name", ["serial", "process"])
    def test_served_frames_bit_identical_with_occupancy(self, backend_name):
        store = self.make_store()
        direct = {
            pipeline: store.get("lego", pipeline)
            .engine.render(camera_indices=(0,), chunk_size=77)
            .image
            for pipeline in ("dense", "spnerf")
        }
        with RenderServer(store, backend=make_backend(backend_name, num_workers=2)) as server:
            jobs = {
                pipeline: server.submit("lego", pipeline, tile_size=77)
                for pipeline in direct
            }
            server.run_until_idle()
            for pipeline, job_id in jobs.items():
                served = server.result(job_id).image
                assert served.tobytes() == direct[pipeline].tobytes(), (
                    f"{pipeline} served under {backend_name} with occupancy "
                    "diverged from the direct render"
                )
            stats = server.stats()
            assert stats.num_culled_samples > 0
            assert stats.num_skipped_rays > 0


# ----------------------------------------------------------------------
# Hardware workload surfacing
# ----------------------------------------------------------------------

class TestWorkloadOccupancy:
    def test_workload_from_render_measures_the_cull(self, spnerf_bundle):
        from repro.hardware.workload import workload_from_render

        workload = workload_from_render(spnerf_bundle, probe_resolution=16)
        assert 0.0 < workload.occupancy_culled_samples_per_ray
        assert workload.occupancy_culled_samples_per_ray <= workload.processed_samples_per_ray
        assert 0.0 <= workload.occupancy_skipped_ray_fraction < 1.0
        assert workload.occupancy_processed_samples < workload.processed_samples
        assert workload.num_culled_samples == int(
            round(workload.occupancy_culled_samples_per_ray * workload.num_rays)
        )

    def test_analytic_workload_defaults_to_no_cull(self, small_scene):
        from repro.hardware.workload import workload_from_scene

        workload = workload_from_scene(small_scene)
        assert workload.occupancy_culled_samples_per_ray == 0.0
        assert workload.num_skipped_rays == 0
        assert workload.occupancy_processed_samples == workload.processed_samples
