"""Unit tests for COO/CSR/CSC encodings (paper Section II-B)."""

import numpy as np

from repro.grid.sparse_formats import (
    encode_coo,
    encode_csc,
    encode_csr,
    sparse_encoding_report,
)


def test_coo_stores_all_coordinates(small_sparse_grid):
    coo = encode_coo(small_sparse_grid)
    assert coo.num_nonzero == small_sparse_grid.num_points
    assert coo.coordinate_overhead_bytes == small_sparse_grid.num_points * 12


def test_csr_row_pointer_is_monotone_and_complete(small_sparse_grid):
    csr = encode_csr(small_sparse_grid)
    assert csr.row_ptr.shape == (small_sparse_grid.spec.resolution + 1,)
    assert np.all(np.diff(csr.row_ptr) >= 0)
    assert csr.row_ptr[-1] == small_sparse_grid.num_points


def test_csc_col_pointer_is_monotone_and_complete(small_sparse_grid):
    csc = encode_csc(small_sparse_grid)
    r = small_sparse_grid.spec.resolution
    assert csc.col_ptr.shape == (r * r + 1,)
    assert np.all(np.diff(csc.col_ptr) >= 0)
    assert csc.col_ptr[-1] == small_sparse_grid.num_points


def test_csr_reconstructs_row_membership(small_sparse_grid):
    csr = encode_csr(small_sparse_grid)
    rows = small_sparse_grid.positions[:, 0]
    counts = np.bincount(rows, minlength=small_sparse_grid.spec.resolution)
    assert np.array_equal(np.diff(csr.row_ptr), counts)


def test_coo_overhead_largest_per_nonzero(small_sparse_grid):
    report = sparse_encoding_report(small_sparse_grid)
    n = small_sparse_grid.num_points
    per_nz = {k: v / n for k, v in report.overhead_bytes.items()}
    # COO stores three explicit coordinates per non-zero; CSR/CSC store one
    # index plus amortised pointers, so COO always pays the most per entry.
    assert per_nz["coo"] > per_nz["csr"]
    assert per_nz["coo"] > per_nz["csc"]


def test_total_includes_payload(small_sparse_grid):
    report = sparse_encoding_report(small_sparse_grid)
    for name, total in report.total_bytes.items():
        assert total == report.payload_bytes + report.overhead_bytes[name]


def test_lookup_costs_are_at_least_one(small_sparse_grid):
    report = sparse_encoding_report(small_sparse_grid)
    for cost in report.lookups_per_access.values():
        assert cost >= 1.0


def test_value_bytes_scales_payload(small_sparse_grid):
    fp32 = sparse_encoding_report(small_sparse_grid, value_bytes=4)
    fp16 = sparse_encoding_report(small_sparse_grid, value_bytes=2)
    assert fp32.payload_bytes == 2 * fp16.payload_bytes
    # Structure overhead is unaffected by the payload precision.
    assert fp32.overhead_bytes == fp16.overhead_bytes
