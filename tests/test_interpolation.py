"""Unit tests for trilinear interpolation (Eq. 2 of the paper)."""

import numpy as np
import pytest

from repro.grid.interpolation import (
    corner_offsets,
    trilinear_interpolate,
    trilinear_vertices_and_weights,
)


def test_corner_offsets_are_the_unit_cube():
    offsets = corner_offsets()
    assert offsets.shape == (8, 3)
    assert set(map(tuple, offsets.tolist())) == {
        (dx, dy, dz) for dx in (0, 1) for dy in (0, 1) for dz in (0, 1)
    }


def test_weights_sum_to_one():
    rng = np.random.default_rng(0)
    coords = rng.uniform(0, 7, size=(50, 3))
    _, weights = trilinear_vertices_and_weights(coords, resolution=8)
    assert np.allclose(weights.sum(axis=1), 1.0)


def test_weights_nonnegative():
    rng = np.random.default_rng(1)
    coords = rng.uniform(0, 7, size=(100, 3))
    _, weights = trilinear_vertices_and_weights(coords, resolution=8)
    assert np.all(weights >= 0.0)


def test_sample_on_vertex_gets_unit_weight():
    coords = np.array([[3.0, 4.0, 5.0]])
    vertices, weights = trilinear_vertices_and_weights(coords, resolution=8)
    exact = np.all(vertices == np.array([3, 4, 5]), axis=-1)
    assert weights[0][exact[0]].sum() == pytest.approx(1.0)


def test_vertices_stay_in_range_at_boundary():
    coords = np.array([[7.0, 7.0, 7.0], [0.0, 0.0, 0.0], [6.999, 0.001, 7.0]])
    vertices, _ = trilinear_vertices_and_weights(coords, resolution=8)
    assert vertices.min() >= 0
    assert vertices.max() <= 7


def test_interpolation_of_linear_field_is_exact():
    # A field linear in x, y, z is reproduced exactly by trilinear interpolation.
    def fetch(v):
        return 2.0 * v[:, 0] + 3.0 * v[:, 1] - v[:, 2]

    rng = np.random.default_rng(2)
    coords = rng.uniform(0, 6.9, size=(40, 3))
    values = trilinear_interpolate(coords, fetch, resolution=8)
    expected = 2.0 * coords[:, 0] + 3.0 * coords[:, 1] - coords[:, 2]
    assert np.allclose(values, expected, atol=1e-9)


def test_interpolation_vector_valued():
    def fetch(v):
        return np.stack([v[:, 0].astype(float), np.ones(v.shape[0])], axis=-1)

    coords = np.array([[2.5, 3.0, 3.0], [0.25, 0.25, 0.25]])
    values = trilinear_interpolate(coords, fetch, resolution=8)
    assert values.shape == (2, 2)
    assert values[0, 0] == pytest.approx(2.5)
    assert np.allclose(values[:, 1], 1.0)


def test_interpolation_matches_paper_weight_formula():
    # Cross-check the vectorised weights against a literal Eq. 2 evaluation.
    coords = np.array([[1.3, 2.7, 4.1]])
    vertices, weights = trilinear_vertices_and_weights(coords, resolution=8)
    for k in range(8):
        xg, yg, zg = vertices[0, k]
        expected = (
            (1 - abs(coords[0, 0] - xg))
            * (1 - abs(coords[0, 1] - yg))
            * (1 - abs(coords[0, 2] - zg))
        )
        assert weights[0, k] == pytest.approx(expected)


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        trilinear_vertices_and_weights(np.zeros((3, 2)), resolution=8)
