"""Unit tests for the view-direction positional encoding."""

import numpy as np
import pytest

from repro.nerf.encoding import positional_encoding, view_encoding_dim


def test_default_dimension_is_27():
    # 3 (raw) + 3 * 2 * 4 (sin/cos over 4 octaves) = 27, giving the 39-wide
    # MLP input together with the 12 feature channels.
    assert view_encoding_dim() == 27


def test_dimension_without_input():
    assert view_encoding_dim(num_frequencies=4, include_input=False) == 24


def test_output_shape_matches():
    dirs = np.random.default_rng(0).normal(size=(10, 3))
    enc = positional_encoding(dirs)
    assert enc.shape == (10, view_encoding_dim())


def test_batch_shapes_preserved():
    dirs = np.zeros((4, 5, 3))
    enc = positional_encoding(dirs)
    assert enc.shape == (4, 5, view_encoding_dim())


def test_raw_input_prepended():
    dirs = np.array([[0.1, -0.2, 0.3]])
    enc = positional_encoding(dirs)
    assert np.allclose(enc[0, :3], dirs[0], atol=1e-6)


def test_zero_vector_encodes_to_known_pattern():
    enc = positional_encoding(np.zeros((1, 3)))
    # sin(0) = 0 and cos(0) = 1 for every frequency.
    assert np.allclose(enc[0, :3], 0.0)
    sines = enc[0, 3::6][:4]
    assert np.allclose(sines, 0.0, atol=1e-7)


def test_values_bounded_by_one():
    dirs = np.random.default_rng(1).uniform(-1, 1, size=(50, 3))
    enc = positional_encoding(dirs)
    assert np.all(np.abs(enc) <= 1.0 + 1e-6)


def test_wrong_last_dim_rejected():
    with pytest.raises(ValueError):
        positional_encoding(np.zeros((5, 2)))
