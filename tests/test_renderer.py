"""Tests for the volumetric renderer and the dense reference field."""

import numpy as np
import pytest

from repro.nerf.renderer import DenseGridField, RenderConfig, VolumetricRenderer


@pytest.fixture()
def reference_field(small_scene):
    return small_scene.reference_field()


class TestDenseGridField:
    def test_query_shapes(self, reference_field, rng):
        points = rng.uniform(-1, 1, size=(64, 3))
        dirs = rng.normal(size=(64, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        density, color = reference_field.query(points, dirs)
        assert density.shape == (64,)
        assert color.shape == (64, 3)

    def test_points_outside_bbox_are_empty(self, reference_field):
        points = np.array([[5.0, 5.0, 5.0], [-3.0, 0.0, 0.0]])
        dirs = np.tile([[0.0, 0.0, 1.0]], (2, 1))
        density, color = reference_field.query(points, dirs)
        assert np.all(density == 0.0)
        assert np.all(color == 0.0)

    def test_occupied_vertex_yields_density(self, small_scene, reference_field):
        # Query exactly at occupied vertices: density must be positive there.
        sparse = small_scene.sparse_grid
        world = small_scene.grid.spec.grid_to_world(sparse.positions[:10].astype(float))
        dirs = np.tile([[0.0, 0.0, 1.0]], (world.shape[0], 1))
        density, _ = reference_field.query(world, dirs)
        assert np.all(density > 0.0)

    def test_stats_track_active_samples(self, reference_field, rng):
        points = rng.uniform(-1, 1, size=(128, 3))
        dirs = np.tile([[0.0, 0.0, 1.0]], (128, 1))
        reference_field.query(points, dirs)
        stats = reference_field.last_stats
        assert stats.num_samples == 128
        assert 0 <= stats.num_active_samples <= 128


class TestVolumetricRenderer:
    def test_render_image_shape_and_range(self, small_scene):
        renderer = VolumetricRenderer(small_scene.reference_field(), small_scene.render_config)
        camera = small_scene.cameras[0]
        image = renderer.render_image(camera, small_scene.bbox_min, small_scene.bbox_max)
        assert image.shape == (camera.height, camera.width, 3)
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_background_dominates_empty_scene(self, small_scene):
        from repro.grid.voxel_grid import VoxelGrid
        from repro.nerf.mlp import build_decoder_mlp

        empty = DenseGridField(VoxelGrid(small_scene.grid.spec), build_decoder_mlp())
        renderer = VolumetricRenderer(empty, small_scene.render_config)
        image = renderer.render_image(
            small_scene.cameras[0], small_scene.bbox_min, small_scene.bbox_max
        )
        assert np.allclose(image, 1.0, atol=1e-2)

    def test_scene_image_differs_from_background(self, small_scene):
        image = small_scene.reference_image(0)
        # The object must cover a visible fraction of the frame.
        non_background = np.mean(np.any(np.abs(image - 1.0) > 0.05, axis=-1))
        assert non_background > 0.05

    def test_render_pixels_matches_full_image(self, small_scene):
        renderer = VolumetricRenderer(small_scene.reference_field(), small_scene.render_config)
        camera = small_scene.cameras[0]
        image = renderer.render_image(camera, small_scene.bbox_min, small_scene.bbox_max)
        indices = np.array([0, 37, 123, camera.num_pixels - 1])
        pixels = renderer.render_pixels(camera, indices, small_scene.bbox_min, small_scene.bbox_max)
        flat = image.reshape(-1, 3)
        assert np.allclose(pixels, flat[indices], atol=1e-6)

    def test_chunking_does_not_change_result(self, small_scene):
        camera = small_scene.cameras[0]
        cfg_small = RenderConfig(num_samples=16, chunk_size=50)
        cfg_large = RenderConfig(num_samples=16, chunk_size=100000)
        img_a = VolumetricRenderer(small_scene.reference_field(), cfg_small).render_image(
            camera, small_scene.bbox_min, small_scene.bbox_max
        )
        img_b = VolumetricRenderer(small_scene.reference_field(), cfg_large).render_image(
            camera, small_scene.bbox_min, small_scene.bbox_max
        )
        assert np.allclose(img_a, img_b)

    def test_stats_accumulate_over_image(self, small_scene):
        renderer = VolumetricRenderer(small_scene.reference_field(), small_scene.render_config)
        camera = small_scene.cameras[0]
        renderer.render_image(camera, small_scene.bbox_min, small_scene.bbox_max)
        stats = renderer.last_stats
        assert stats.num_rays == camera.num_pixels
        assert stats.num_samples == camera.num_pixels * small_scene.render_config.num_samples
