"""Tests for the energy-report bookkeeping and run_all driver surface."""

import pytest

from repro.hardware.dram import DRAM_CONFIGS, DRAMModel
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.mlp_unit import MLPUnit
from repro.hardware.sgpu import SGPU


class TestEnergyReport:
    def _report(self, frame_time=0.02):
        return EnergyReport(
            energy_j={"systolic_array": 0.02, "sgpu_logic": 0.004, "leakage": 0.001},
            frame_time_s=frame_time,
        )

    def test_total_energy_is_sum(self):
        report = self._report()
        assert report.total_energy_j == pytest.approx(0.025)

    def test_power_is_energy_over_time(self):
        report = self._report(frame_time=0.025)
        assert report.total_power_w == pytest.approx(1.0)
        assert report.power_w["systolic_array"] == pytest.approx(0.8)

    def test_zero_frame_time_gives_zero_power(self):
        report = self._report(frame_time=0.0)
        assert report.total_power_w == 0.0
        assert all(v == 0.0 for v in report.power_w.values())


class TestEnergyModel:
    def test_components_present_and_nonnegative(self, paper_workload):
        sgpu = SGPU()
        mlp = MLPUnit()
        model = EnergyModel(dram=DRAMModel(DRAM_CONFIGS["lpddr4-3200"]))
        report = model.frame_energy(
            sgpu.activity(paper_workload),
            mlp.frame_activity(paper_workload.active_samples),
            dram_bytes=10e6,
            frame_time_s=0.015,
        )
        expected = {
            "systolic_array", "sgpu_logic", "on_chip_sram", "dram",
            "clock_and_control", "leakage",
        }
        assert set(report.energy_j) == expected
        assert all(v >= 0.0 for v in report.energy_j.values())

    def test_leakage_grows_with_frame_time(self, paper_workload):
        sgpu = SGPU()
        mlp = MLPUnit()
        model = EnergyModel(dram=DRAMModel(DRAM_CONFIGS["lpddr4-3200"]))
        short = model.frame_energy(
            sgpu.activity(paper_workload),
            mlp.frame_activity(paper_workload.active_samples),
            dram_bytes=10e6,
            frame_time_s=0.01,
        )
        long = model.frame_energy(
            sgpu.activity(paper_workload),
            mlp.frame_activity(paper_workload.active_samples),
            dram_bytes=10e6,
            frame_time_s=0.10,
        )
        assert long.energy_j["leakage"] > short.energy_j["leakage"]
        # Dynamic components do not depend on the frame time.
        assert long.energy_j["systolic_array"] == pytest.approx(
            short.energy_j["systolic_array"]
        )

    def test_dram_energy_scales_with_traffic(self, paper_workload):
        sgpu = SGPU()
        mlp = MLPUnit()
        model = EnergyModel(dram=DRAMModel(DRAM_CONFIGS["lpddr4-3200"]))
        small = model.frame_energy(
            sgpu.activity(paper_workload),
            mlp.frame_activity(paper_workload.active_samples),
            dram_bytes=1e6,
            frame_time_s=0.015,
        )
        big = model.frame_energy(
            sgpu.activity(paper_workload),
            mlp.frame_activity(paper_workload.active_samples),
            dram_bytes=100e6,
            frame_time_s=0.015,
        )
        assert big.energy_j["dram"] == pytest.approx(100 * small.energy_j["dram"])


class TestRunAllDriver:
    def test_module_importable_and_exposes_api(self):
        from repro.analysis import run_all

        assert callable(run_all.run_evaluation)
        assert callable(run_all.main)

    def test_cli_parser_defaults(self):
        # main() with --help would exit; instead check the argparse wiring by
        # invoking run_evaluation's signature defaults.
        import inspect

        from repro.analysis.run_all import run_evaluation

        signature = inspect.signature(run_evaluation)
        assert signature.parameters["resolution"].default == 96
        assert signature.parameters["sweep_scene"].default == "lego"
