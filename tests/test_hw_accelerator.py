"""Tests for the SpNeRF accelerator simulator, area and energy models."""

from dataclasses import replace

import pytest

from repro.core.config import SpNeRFConfig
from repro.hardware.accelerator import AcceleratorConfig, SpNeRFAccelerator


@pytest.fixture(scope="module")
def accelerator():
    return SpNeRFAccelerator()


class TestSimulation:
    def test_report_fields_consistent(self, accelerator, paper_workload):
        report = accelerator.simulate_frame(paper_workload)
        assert report.fps == pytest.approx(1.0 / report.frame_time_s)
        assert report.cycles == pytest.approx(report.frame_time_s * accelerator.config.clock_hz)
        assert report.dram_bytes > 0
        assert len(report.per_subgrid_cycles) == accelerator.config.num_subgrids

    def test_realtime_on_edge_workload(self, accelerator, paper_workload):
        # SpNeRF's headline: real-time rendering (tens of FPS) at 800x800.
        report = accelerator.simulate_frame(paper_workload)
        assert report.fps > 24.0
        assert report.power_w < 10.0

    def test_denser_workload_is_slower(self, accelerator, paper_workload):
        light = replace(paper_workload, active_samples_per_ray=1.0)
        heavy = replace(paper_workload, active_samples_per_ray=6.0)
        assert (
            accelerator.simulate_frame(heavy).frame_time_s
            > accelerator.simulate_frame(light).frame_time_s
        )

    def test_double_buffering_hides_dram_time(self, paper_workload):
        base = SpNeRFAccelerator(AcceleratorConfig(double_buffered=True))
        no_db = SpNeRFAccelerator(AcceleratorConfig(double_buffered=False))
        assert (
            base.simulate_frame(paper_workload).frame_time_s
            <= no_db.simulate_frame(paper_workload).frame_time_s
        )

    def test_analytical_mode_is_not_slower_than_pipeline(self, accelerator, paper_workload):
        analytical = accelerator.analytical_frame(paper_workload)
        simulated = accelerator.simulate_frame(paper_workload)
        assert analytical.frame_time_s <= simulated.frame_time_s * 1.05

    def test_dram_traffic_dominated_by_model(self, accelerator, paper_workload):
        traffic = accelerator.frame_dram_bytes(paper_workload)
        assert traffic >= paper_workload.spnerf_model_bytes

    def test_simulate_scenes_returns_per_scene_reports(self, accelerator, paper_workload):
        other = replace(paper_workload, scene_name="other")
        reports = accelerator.simulate_scenes([paper_workload, other])
        assert set(reports) == {paper_workload.scene_name, "other"}

    def test_config_from_spnerf_config(self):
        config = AcceleratorConfig.from_spnerf_config(
            SpNeRFConfig(num_subgrids=32, hash_table_size=8192)
        )
        assert config.num_subgrids == 32
        assert config.sgpu.index_density_buffer_bytes == 8192 * 4


class TestAreaModel:
    def test_total_in_paper_ballpark(self, accelerator):
        # Paper: 7.7 mm^2 at 28 nm.  The analytic model should land within
        # roughly +-40 %.
        total = accelerator.area_model.total_mm2()
        assert 4.5 <= total <= 11.0

    def test_sram_budget_near_061_mb(self, accelerator):
        sram_mb = accelerator.area_model.total_sram_mbytes()
        assert 0.45 <= sram_mb <= 0.8

    def test_sram_is_minor_area_fraction(self, accelerator):
        # The paper's key area observation: unlike prior accelerators, SRAM is
        # a small fraction of SpNeRF's area.
        assert accelerator.area_model.sram_area_fraction() < 0.4

    def test_systolic_array_is_largest_logic_block(self, accelerator):
        logic = accelerator.area_model.logic_breakdown()
        assert logic["systolic_array"] == max(logic.values())

    def test_breakdown_sums_to_total(self, accelerator):
        breakdown = accelerator.area_model.breakdown()
        assert sum(breakdown.values()) == pytest.approx(accelerator.area_model.total_mm2())


class TestEnergyModel:
    def test_power_in_paper_ballpark(self, accelerator, paper_workload):
        report = accelerator.simulate_frame(paper_workload)
        assert 1.0 <= report.power_w <= 6.0

    def test_systolic_array_dominates_power(self, accelerator, paper_workload):
        # Fig. 9(b): the systolic array is the dominant consumer (not SRAM).
        report = accelerator.simulate_frame(paper_workload)
        power = report.energy.power_w
        assert power["systolic_array"] == max(power.values())
        assert power["on_chip_sram"] < power["systolic_array"]

    def test_energy_scales_with_work(self, accelerator, paper_workload):
        light = replace(paper_workload, active_samples_per_ray=1.0)
        heavy = replace(paper_workload, active_samples_per_ray=6.0)
        e_light = accelerator.simulate_frame(light).energy_per_frame_j
        e_heavy = accelerator.simulate_frame(heavy).energy_per_frame_j
        assert e_heavy > e_light

    def test_fps_per_watt_better_than_prior_accelerators(self, accelerator, paper_workload):
        from repro.hardware.baselines import NEUREX_EDGE, RT_NERF_EDGE

        report = accelerator.simulate_frame(paper_workload)
        assert report.fps_per_watt > RT_NERF_EDGE.fps_per_watt
        assert report.fps_per_watt > NEUREX_EDGE.fps_per_watt
