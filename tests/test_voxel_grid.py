"""Unit tests for repro.grid.voxel_grid."""

import numpy as np
import pytest

from repro.grid.voxel_grid import GridSpec, SparseVoxelGrid, VoxelGrid


class TestGridSpec:
    def test_num_vertices(self):
        assert GridSpec(resolution=8).num_vertices == 512

    def test_voxel_size_matches_bbox(self):
        spec = GridSpec(resolution=5, bbox_min=(-2, -2, -2), bbox_max=(2, 2, 2))
        assert np.allclose(spec.voxel_size, 1.0)

    def test_world_to_grid_roundtrip(self):
        spec = GridSpec(resolution=16)
        points = np.array([[0.0, 0.5, -0.5], [-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]])
        recovered = spec.grid_to_world(spec.world_to_grid(points))
        assert np.allclose(recovered, points)

    def test_world_to_grid_corners(self):
        spec = GridSpec(resolution=9)
        coords = spec.world_to_grid(np.array([[-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]]))
        assert np.allclose(coords[0], 0.0)
        assert np.allclose(coords[1], 8.0)

    def test_contains(self):
        spec = GridSpec(resolution=4)
        points = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0], [-1.0, 1.0, 0.3]])
        assert list(spec.contains(points)) == [True, False, True]

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(resolution=1)

    def test_invalid_bbox_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(resolution=4, bbox_min=(1, 1, 1), bbox_max=(-1, -1, -1))

    def test_invalid_feature_dim_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(resolution=4, feature_dim=0)


class TestVoxelGrid:
    def test_default_grids_are_zero(self):
        grid = VoxelGrid(GridSpec(resolution=4, feature_dim=3))
        assert grid.density.shape == (4, 4, 4)
        assert grid.features.shape == (4, 4, 4, 3)
        assert grid.occupancy_fraction() == 0.0

    def test_shape_validation(self):
        spec = GridSpec(resolution=4, feature_dim=3)
        with pytest.raises(ValueError):
            VoxelGrid(spec, density=np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            VoxelGrid(spec, features=np.zeros((4, 4, 4, 5)))

    def test_occupancy_counts_density_and_features(self, tiny_grid):
        assert tiny_grid.occupancy_mask().sum() == 4
        # A vertex with zero density but non-zero features is still occupied.
        tiny_grid2 = tiny_grid.copy()
        tiny_grid2.features[0, 0, 0, 2] = 1.0
        assert tiny_grid2.occupancy_mask().sum() == 5

    def test_sparsity_complements_occupancy(self, tiny_grid):
        assert tiny_grid.sparsity() + tiny_grid.occupancy_fraction() == pytest.approx(1.0)

    def test_memory_bytes(self):
        grid = VoxelGrid(GridSpec(resolution=4, feature_dim=12))
        assert grid.memory_bytes(dtype_bytes=4) == 64 * 13 * 4

    def test_vertex_values_clipped(self, tiny_grid):
        density, features = tiny_grid.vertex_values(np.array([[100, 100, 100]]))
        # Clipped to the last vertex, which is empty in this fixture.
        assert density[0] == 0.0
        assert np.all(features[0] == 0.0)

    def test_to_sparse_roundtrip(self, tiny_grid):
        sparse = tiny_grid.to_sparse()
        assert sparse.num_points == 4
        dense = sparse.to_dense()
        assert np.allclose(dense.density, tiny_grid.density)
        assert np.allclose(dense.features, tiny_grid.features)


class TestSparseVoxelGrid:
    def test_shape_validation(self):
        spec = GridSpec(resolution=4, feature_dim=2)
        with pytest.raises(ValueError):
            SparseVoxelGrid(
                spec=spec,
                positions=np.zeros((3, 3)),
                density=np.zeros(2),
                features=np.zeros((3, 2)),
            )

    def test_linear_indices_unique_per_vertex(self, tiny_grid):
        sparse = tiny_grid.to_sparse()
        linear = sparse.linear_indices()
        assert len(set(linear.tolist())) == sparse.num_points
        assert linear.max() < tiny_grid.spec.num_vertices

    def test_occupancy_bitmap_matches_positions(self, tiny_grid):
        sparse = tiny_grid.to_sparse()
        bitmap = sparse.occupancy_bitmap()
        assert bitmap.sum() == sparse.num_points
        for pos in sparse.positions:
            assert bitmap[tuple(pos)]

    def test_lookup_exact_and_missing(self, tiny_grid):
        sparse = tiny_grid.to_sparse()
        hit = sparse.positions[:2]
        miss = np.array([[0, 0, 0], [7, 7, 7]])
        density, features = sparse.lookup(np.vstack([hit, miss]))
        assert np.all(density[:2] > 0.0)
        assert np.all(density[2:] == 0.0)
        assert np.all(features[2:] == 0.0)

    def test_dense_memory_exceeds_payload(self, small_sparse_grid):
        assert small_sparse_grid.dense_memory_bytes() > small_sparse_grid.payload_memory_bytes()

    def test_scene_occupancy_in_sparse_regime(self, small_sparse_grid):
        # Procedural scenes must stay in the sparse regime the paper profiles.
        assert small_sparse_grid.occupancy_fraction() < 0.25
