"""Unit tests for cameras, ray generation, AABB clipping and sampling."""

import numpy as np
import pytest

from repro.nerf.rays import (
    Camera,
    RayBatch,
    generate_rays,
    look_at_pose,
    ray_aabb_intersect,
    sample_along_rays,
)


@pytest.fixture()
def camera():
    pose = look_at_pose(np.array([0.0, -4.0, 0.0]))
    return Camera(width=16, height=12, focal=20.0, camera_to_world=pose)


class TestCamera:
    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=4, focal=10.0, camera_to_world=np.eye(4))
        with pytest.raises(ValueError):
            Camera(width=4, height=4, focal=-1.0, camera_to_world=np.eye(4))
        with pytest.raises(ValueError):
            Camera(width=4, height=4, focal=1.0, camera_to_world=np.eye(3))

    def test_position_extracted_from_pose(self, camera):
        assert np.allclose(camera.position, [0.0, -4.0, 0.0])

    def test_scaled_preserves_field_of_view(self, camera):
        half_fov = np.arctan(camera.width / (2 * camera.focal))
        scaled = camera.scaled(0.5)
        scaled_fov = np.arctan(scaled.width / (2 * scaled.focal))
        assert scaled.width == 8
        assert half_fov == pytest.approx(scaled_fov, rel=1e-6)


class TestLookAt:
    def test_camera_looks_at_target(self):
        eye = np.array([2.0, 1.0, 3.0])
        pose = look_at_pose(eye, target=(0, 0, 0))
        forward = pose[:3, 2]
        to_eye = eye / np.linalg.norm(eye)
        assert np.allclose(forward, to_eye, atol=1e-8)

    def test_rotation_is_orthonormal(self):
        pose = look_at_pose(np.array([1.0, -2.0, 0.5]))
        rot = pose[:3, :3]
        assert np.allclose(rot.T @ rot, np.eye(3), atol=1e-9)

    def test_degenerate_up_handled(self):
        pose = look_at_pose(np.array([0.0, 0.0, 2.0]))  # looking straight down
        assert np.all(np.isfinite(pose))

    def test_coincident_eye_target_rejected(self):
        with pytest.raises(ValueError):
            look_at_pose(np.zeros(3), target=(0, 0, 0))


class TestGenerateRays:
    def test_one_ray_per_pixel(self, camera):
        rays = generate_rays(camera)
        assert rays.num_rays == camera.num_pixels
        assert np.allclose(np.linalg.norm(rays.directions, axis=1), 1.0)

    def test_all_rays_originate_at_camera(self, camera):
        rays = generate_rays(camera)
        assert np.allclose(rays.origins, camera.position)

    def test_center_ray_points_at_target(self, camera):
        # The central pixel's ray should point (roughly) from the camera to the
        # origin it is looking at.
        rays = generate_rays(camera)
        center_index = (camera.height // 2) * camera.width + camera.width // 2
        direction = rays.directions[center_index]
        expected = -camera.position / np.linalg.norm(camera.position)
        assert np.allclose(direction, expected, atol=0.1)

    def test_pixel_subset(self, camera):
        indices = np.array([0, 5, 17])
        rays = generate_rays(camera, pixel_indices=indices)
        full = generate_rays(camera)
        assert rays.num_rays == 3
        assert np.allclose(rays.directions, full.directions[indices])


class TestAABBIntersect:
    def test_hitting_ray_gets_tight_bounds(self):
        rays = RayBatch(
            origins=np.array([[0.0, -4.0, 0.0]]),
            directions=np.array([[0.0, 1.0, 0.0]]),
            near=np.array([0.01]),
            far=np.array([100.0]),
        )
        clipped = ray_aabb_intersect(rays, (-1, -1, -1), (1, 1, 1))
        assert clipped.near[0] == pytest.approx(3.0)
        assert clipped.far[0] == pytest.approx(5.0)

    def test_missing_ray_is_marked_invalid(self):
        rays = RayBatch(
            origins=np.array([[0.0, -4.0, 5.0]]),
            directions=np.array([[0.0, 1.0, 0.0]]),
            near=np.array([0.01]),
            far=np.array([100.0]),
        )
        clipped = ray_aabb_intersect(rays, (-1, -1, -1), (1, 1, 1))
        assert not clipped.valid_mask()[0]

    def test_axis_parallel_ray_inside_slab(self):
        rays = RayBatch(
            origins=np.array([[0.5, -4.0, 0.5]]),
            directions=np.array([[0.0, 1.0, 0.0]]),
            near=np.array([0.0]),
            far=np.array([100.0]),
        )
        clipped = ray_aabb_intersect(rays, (-1, -1, -1), (1, 1, 1))
        assert clipped.valid_mask()[0]


class TestSampling:
    def _rays(self):
        return RayBatch(
            origins=np.zeros((3, 3)),
            directions=np.tile(np.array([[1.0, 0.0, 0.0]]), (3, 1)),
            near=np.array([1.0, 2.0, 0.5]),
            far=np.array([2.0, 4.0, 0.5]),
        )

    def test_samples_within_bounds(self):
        rays = self._rays()
        points, t = sample_along_rays(rays, 16)
        assert points.shape == (3, 16, 3)
        assert np.all(t >= rays.near[:, None] - 1e-9)
        assert np.all(t <= rays.far[:, None] + 1e-9)

    def test_deterministic_midpoints(self):
        rays = self._rays()
        _, t1 = sample_along_rays(rays, 8)
        _, t2 = sample_along_rays(rays, 8)
        assert np.allclose(t1, t2)

    def test_stratified_jitter_stays_in_bins(self):
        rays = self._rays()
        rng = np.random.default_rng(0)
        _, t = sample_along_rays(rays, 8, stratified=True, rng=rng)
        assert np.all(t >= rays.near[:, None] - 1e-9)
        assert np.all(t <= rays.far[:, None] + 1e-9)

    def test_degenerate_ray_collapses_to_point(self):
        rays = self._rays()
        points, t = sample_along_rays(rays, 4)
        # Third ray has near == far; all its samples coincide.
        assert np.allclose(t[2], 0.5)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            sample_along_rays(self._rays(), 0)
