"""Unit tests for the decoder MLP."""

import numpy as np
import pytest

from repro.nerf.encoding import positional_encoding
from repro.nerf.mlp import MLP, MLPSpec, build_decoder_mlp


class TestMLPSpec:
    def test_paper_geometry(self):
        spec = MLPSpec()
        assert spec.layer_dims == (39, 128, 128, 3)
        assert spec.num_layers == 3

    def test_macs_per_sample(self):
        spec = MLPSpec()
        assert spec.macs_per_sample == 39 * 128 + 128 * 128 + 128 * 3

    def test_parameter_count(self):
        spec = MLPSpec(input_dim=4, hidden_dims=(8,), output_dim=2)
        assert spec.num_parameters == 4 * 8 + 8 + 8 * 2 + 2


class TestMLP:
    def test_random_forward_shape(self):
        mlp = MLP.random(MLPSpec(), seed=0)
        out = mlp.forward(np.zeros((5, 39)))
        assert out.shape == (5, 3)

    def test_sigmoid_output_in_unit_interval(self):
        mlp = MLP.random(MLPSpec(), seed=1, scale=1.0)
        out = mlp.forward(np.random.default_rng(0).normal(size=(20, 39)))
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    def test_no_sigmoid_option(self):
        mlp = MLP.random(MLPSpec(), seed=1)
        raw = mlp.forward(np.zeros((2, 39)), apply_sigmoid=False)
        squashed = mlp.forward(np.zeros((2, 39)), apply_sigmoid=True)
        assert not np.allclose(raw, squashed)

    def test_single_vector_promoted_to_batch(self):
        mlp = MLP.random(MLPSpec(), seed=2)
        out = mlp.forward(np.zeros(39))
        assert out.shape == (1, 3)

    def test_wrong_input_dim_rejected(self):
        mlp = MLP.random(MLPSpec(), seed=0)
        with pytest.raises(ValueError):
            mlp.forward(np.zeros((4, 40)))

    def test_layer_shape_validation(self):
        spec = MLPSpec()
        with pytest.raises(ValueError):
            MLP(spec=spec, weights=[np.zeros((2, 2))], biases=[np.zeros(2)])

    def test_forward_with_activations_layers(self):
        mlp = MLP.random(MLPSpec(), seed=0)
        acts = mlp.forward_with_activations(np.zeros((3, 39)))
        # input, 3 layer outputs, sigmoid output
        assert len(acts) == 5
        assert acts[-1].shape == (3, 3)

    def test_parameter_bytes_fp16(self):
        mlp = MLP.random(MLPSpec(), seed=0)
        assert mlp.parameter_bytes(2) == MLPSpec().num_parameters * 2

    def test_copy_is_independent(self):
        mlp = MLP.random(MLPSpec(), seed=0)
        clone = mlp.copy()
        clone.weights[0][0, 0] += 1.0
        assert mlp.weights[0][0, 0] != clone.weights[0][0, 0]


class TestDecoderMLP:
    def test_decoder_tracks_albedo_channels(self):
        mlp = build_decoder_mlp(feature_dim=12)
        albedo = np.array([0.8, 0.3, 0.6])
        logit = np.log(albedo / (1 - albedo))
        features = np.zeros((1, 12), dtype=np.float32)
        features[0, :3] = logit
        view = positional_encoding(np.array([[0.0, 1.0, 0.0]]))
        out = mlp.forward(np.concatenate([features, view], axis=-1))
        # View dependence perturbs the color slightly but it must stay close
        # to the stored albedo.
        assert np.allclose(out[0], albedo, atol=0.2)

    def test_decoder_is_view_dependent(self):
        mlp = build_decoder_mlp(feature_dim=12)
        features = np.zeros((1, 12), dtype=np.float32)
        v1 = positional_encoding(np.array([[0.0, 1.0, 0.0]]))
        v2 = positional_encoding(np.array([[1.0, 0.0, 0.0]]))
        out1 = mlp.forward(np.concatenate([features, v1], axis=-1))
        out2 = mlp.forward(np.concatenate([features, v2], axis=-1))
        assert not np.allclose(out1, out2)

    def test_decoder_deterministic(self):
        a = build_decoder_mlp(seed=7)
        b = build_decoder_mlp(seed=7)
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)

    def test_decoder_input_width_matches_paper(self):
        mlp = build_decoder_mlp(feature_dim=12, num_view_frequencies=4)
        assert mlp.spec.input_dim == 39
