"""Tests for the SGPU and MLP-unit hardware models."""

import pytest

from repro.hardware.mlp_unit import MLPUnit, SystolicArrayConfig
from repro.hardware.sgpu import SGPU, SGPUConfig
from repro.nerf.mlp import MLPSpec


class TestSGPU:
    def test_sram_near_paper_budget(self):
        # The paper reports ~571 KB of SGPU SRAM; the default buffer plan must
        # land in that neighbourhood.
        sgpu = SGPU()
        total_kb = sgpu.sram_bytes() / 1024
        assert 450 <= total_kb <= 700

    def test_sram_breakdown_sums(self):
        sgpu = SGPU()
        assert sum(sgpu.sram_breakdown().values()) == sgpu.sram_bytes()

    def test_pipeline_cycles_scale_with_active_samples(self, frame_workload):
        from dataclasses import replace

        sgpu = SGPU()
        low = replace(frame_workload, active_samples_per_ray=1.0)
        high = replace(frame_workload, active_samples_per_ray=4.0)
        assert sgpu.pipeline_cycles(high) > sgpu.pipeline_cycles(low)

    def test_empty_samples_are_cheaper_than_active(self, frame_workload):
        from dataclasses import replace

        sgpu = SGPU()
        all_active = replace(
            frame_workload,
            active_samples_per_ray=frame_workload.processed_samples_per_ray,
        )
        mostly_empty = replace(frame_workload, active_samples_per_ray=0.5)
        assert sgpu.pipeline_cycles(all_active) > sgpu.pipeline_cycles(mostly_empty)

    def test_activity_counts_positive(self, frame_workload):
        activity = SGPU().activity(frame_workload)
        assert activity.cycles > 0
        assert activity.fp16_ops > 0
        assert activity.hash_ops == frame_workload.vertex_lookups
        assert activity.sram_read_bytes > 0

    def test_hash_ops_equal_vertex_lookups(self, frame_workload):
        activity = SGPU().activity(frame_workload)
        assert activity.hash_ops == frame_workload.processed_samples * 8

    def test_index_buffer_size_configurable(self):
        sgpu = SGPU(SGPUConfig(index_density_buffer_bytes=4096))
        assert sgpu.hash_unit.sram_bytes() < SGPU().hash_unit.sram_bytes()


class TestMLPUnit:
    def test_buffer_budget_matches_paper(self):
        # Paper: MLP buffers total ~58 KB.
        unit = MLPUnit()
        assert 50 * 1024 <= unit.sram_bytes() <= 70 * 1024

    def test_layer_cycles_at_least_reduction_depth(self):
        unit = MLPUnit()
        assert unit.layer_cycles(batch=64, in_dim=39, out_dim=128) >= 39
        assert unit.layer_cycles(batch=64, in_dim=128, out_dim=128) >= 128

    def test_batch_cycles_sum_of_layers(self):
        unit = MLPUnit()
        assert unit.batch_cycles() == pytest.approx(sum(unit.batch_layer_breakdown()))

    def test_frame_activity_macs_exact(self):
        unit = MLPUnit()
        active = 100_000
        activity = unit.frame_activity(active)
        assert activity.macs == active * MLPSpec().macs_per_sample

    def test_zero_samples(self):
        activity = MLPUnit().frame_activity(0)
        assert activity.cycles == 0
        assert activity.macs == 0

    def test_utilization_bounded(self):
        activity = MLPUnit().frame_activity(1_000_000)
        assert 0.0 < activity.utilization <= 1.0

    def test_bigger_array_is_faster_but_less_utilised(self):
        small = MLPUnit(SystolicArrayConfig(rows=32, cols=32))
        large = MLPUnit(SystolicArrayConfig(rows=128, cols=128))
        act_small = small.frame_activity(500_000)
        act_large = large.frame_activity(500_000)
        assert act_large.cycles < act_small.cycles
        assert act_large.utilization <= act_small.utilization + 1e-9

    def test_peak_macs_per_cycle(self):
        assert SystolicArrayConfig(rows=64, cols=64).peak_macs_per_cycle == 4096
