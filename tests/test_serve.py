"""Tests for the :mod:`repro.serve` subsystem.

Covers the five serving layers plus the PR's acceptance invariant:

* tiles — partitions cover every pixel exactly once, and a tile-sharded
  frame is *bit-identical* to a whole-frame render chunked at the tile size;
* store — hit/miss/eviction accounting, LRU order, memory-budget eviction,
  and scene teardown when the last resident pipeline goes;
* server — submit/poll/result lifecycle, priority overtaking, per-tile
  round-robin interleaving, deadlines, admission control, failure isolation;
* telemetry — snapshots aggregate job and store counters coherently;
* traffic — deterministic workload generation and both replay harnesses.

All scenes here are deliberately tiny (16^3 grids, 24px frames) so the whole
module runs in seconds; the paper-scale behaviour is exercised by
``benchmarks/perf_serve.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig
from repro.serve import (
    JobState,
    Priority,
    RenderServer,
    SceneStore,
    Tile,
    UnknownJobError,
    assemble_tiles,
    closed_loop_workload,
    orbit_workload,
    plan_tiles,
    poisson_workload,
    replay_closed_loop,
    replay_open_loop,
)

#: Small-but-real pipeline configuration shared by every store in this module.
SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


@pytest.fixture(scope="module")
def warm_store() -> SceneStore:
    """One unbounded store shared by read-only server tests."""
    return make_store()


class FakeClock:
    """A manually advanced clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Tiles
# ----------------------------------------------------------------------

def test_plan_tiles_partitions_exactly():
    tiles = plan_tiles(100, 32, camera_index=3)
    assert [t.num_pixels for t in tiles] == [32, 32, 32, 4]
    assert tiles[0].camera_index == 3
    joined = np.concatenate([t.pixel_indices() for t in tiles])
    np.testing.assert_array_equal(joined, np.arange(100))


def test_plan_tiles_rejects_bad_sizes():
    with pytest.raises(ValueError):
        plan_tiles(0, 8)
    with pytest.raises(ValueError):
        plan_tiles(100, 0)


def test_assemble_rejects_incomplete_cover():
    tiles = [Tile(0, 0, 8)]
    with pytest.raises(ValueError, match="frame incomplete"):
        assemble_tiles(tiles, [np.zeros((8, 3))], (4, 4))
    with pytest.raises(ValueError, match="expects"):
        assemble_tiles(tiles, [np.zeros((5, 3))], (2, 4))


@pytest.mark.parametrize("pipeline", ["dense", "spnerf"])
def test_tiled_frame_bit_identical_to_chunked_whole_frame(warm_store, pipeline):
    """The acceptance invariant: contiguous tiles of size T recompose to the
    exact bits of a whole-frame render with chunk_size=T (same ray batches)."""
    record = warm_store.get("lego", pipeline)
    tile_size = 77  # odd, non-divisor: exercises the remainder tile
    camera = record.scene.cameras[0]
    tiles = plan_tiles(camera.num_pixels, tile_size)
    tile_images = [
        record.engine.render(camera_indices=(0,), pixel_indices=t.pixel_indices()).image
        for t in tiles
    ]
    assembled = assemble_tiles(tiles, tile_images, (camera.height, camera.width))
    direct = record.engine.render(camera_indices=(0,), chunk_size=tile_size).image
    assert np.array_equal(assembled, direct)


# ----------------------------------------------------------------------
# SceneStore
# ----------------------------------------------------------------------

def test_store_hits_and_misses():
    store = make_store()
    first = store.get("lego", "dense")
    again = store.get("lego", "dense")
    assert again is first
    stats = store.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
    assert stats.resident_entries == 1
    assert stats.resident_bytes == first.memory_bytes > 0
    assert stats.hit_rate == 0.5


def test_store_scene_shared_across_pipelines():
    store = make_store()
    dense = store.get("lego", "dense")
    spnerf = store.get("lego", "spnerf")
    assert dense.scene is spnerf.scene


def test_store_lru_eviction_by_entries():
    store = make_store(max_entries=2)
    store.get("lego", "dense")
    store.get("ficus", "dense")
    store.get("lego", "dense")  # refresh: lego is now most recent
    store.get("chair", "dense")  # evicts ficus, the LRU entry
    assert store.resident_keys() == (("lego", "dense"), ("chair", "dense"))
    assert store.stats().evictions == 1


def test_store_memory_budget_eviction_drops_scene():
    probe = make_store()
    bytes_per_bundle = probe.get("lego", "dense").memory_bytes
    store = make_store(memory_budget_bytes=int(1.5 * bytes_per_bundle))
    store.get("lego", "dense")
    store.get("ficus", "dense")  # over budget: lego evicted, its scene dropped
    assert store.resident_keys() == (("ficus", "dense"),)
    assert not store.contains("lego", "dense")
    rebuilt = store.get("lego", "dense")  # a fresh scene object, rebuilt
    assert rebuilt.scene is not probe.get("lego", "dense").scene
    assert store.stats().evictions >= 1


def test_store_never_evicts_newest_even_over_budget():
    store = make_store(memory_budget_bytes=1)  # nothing fits, but serve anyway
    record = store.get("lego", "dense")
    assert record.memory_bytes > 1
    assert store.resident_keys() == (("lego", "dense"),)


def test_store_failed_build_does_not_pin_scene(small_scene):
    loads = []

    def loader(name):
        loads.append(name)
        return small_scene

    store = SceneStore(config=SERVE_CONFIG, loader=loader)
    with pytest.raises(Exception, match="no-such-pipeline"):
        store.get("lego", "no-such-pipeline")
    store.get("lego", "dense")
    assert loads == ["lego", "lego"]  # the failed build released the scene

    # ... but a scene owned by a resident entry survives a failed build.
    with pytest.raises(Exception, match="no-such-pipeline"):
        store.get("lego", "no-such-pipeline")
    store.get("lego", "spnerf")
    assert loads == ["lego", "lego"]


def test_store_custom_loader_and_validation(small_scene):
    store = SceneStore(config=SERVE_CONFIG, loader=lambda name: small_scene)
    assert store.get("anything", "dense").scene is small_scene
    with pytest.raises(ValueError):
        SceneStore(memory_budget_bytes=0)
    with pytest.raises(ValueError):
        SceneStore(max_entries=0)


# ----------------------------------------------------------------------
# RenderServer
# ----------------------------------------------------------------------

def test_server_lifecycle_and_result(warm_store):
    server = RenderServer(warm_store, default_tile_size=100)
    job = server.submit("lego", "dense", compare_to_reference=True)
    view = server.poll(job)
    assert view.state is JobState.QUEUED and view.progress == 0.0
    with pytest.raises(RuntimeError, match="queued"):
        server.result(job)

    assert server.step()  # first tile: bundle acquired, tiles planned
    view = server.poll(job)
    assert view.state is JobState.RUNNING
    assert (view.tiles_done, view.tiles_total) == (1, 6)  # 576 px / 100

    server.run_until_idle()
    result = server.result(job)
    assert server.poll(job).state is JobState.DONE
    assert result.image.shape == (24, 24, 3)
    assert result.num_tiles == 6
    assert result.psnr == float("inf")  # dense == the reference field
    assert result.latency_s >= result.queue_wait_s >= 0.0
    assert not server.has_pending()


def test_server_frame_bit_identical_to_direct_engine(warm_store):
    server = RenderServer(warm_store)
    job = server.submit("lego", "spnerf", tile_size=77)
    server.run_until_idle()
    served = server.result(job).image
    direct = warm_store.get("lego", "spnerf").engine.render(
        camera_indices=(0,), chunk_size=77
    ).image
    assert np.array_equal(served, direct)


def test_server_interleaves_small_past_large(warm_store):
    """Per-tile round-robin: a 1-tile job overtakes a many-tile job mid-render."""
    server = RenderServer(warm_store)
    big = server.submit("lego", "dense", tile_size=32)  # 18 tiles
    small = server.submit("ficus", "dense", tile_size=1024)  # 1 tile
    steps = 0
    while server.poll(small).state is not JobState.DONE:
        assert server.step()
        steps += 1
    assert steps <= 3  # the small job waited at most one big tile, not 18
    assert server.poll(big).state is JobState.RUNNING
    server.run_until_idle()
    assert server.poll(big).state is JobState.DONE


def test_server_priority_overtakes_fifo(warm_store):
    server = RenderServer(warm_store)
    normal = server.submit("lego", "dense")
    high = server.submit("ficus", "dense", priority=Priority.HIGH)
    server.step()  # must pick the HIGH job despite its later submission
    assert server.poll(high).state in (JobState.RUNNING, JobState.DONE)
    assert server.poll(normal).state is JobState.QUEUED
    server.run_until_idle()
    assert server.poll(normal).state is JobState.DONE


def test_server_deadline_expires_job(warm_store):
    clock = FakeClock()
    server = RenderServer(warm_store, clock=clock)
    urgent = server.submit("lego", "dense", deadline_s=0.5, tile_size=64)
    relaxed = server.submit("lego", "dense", tile_size=64)
    server.step()  # urgent starts rendering
    clock.advance(1.0)  # ... and its deadline passes mid-flight
    server.run_until_idle()
    assert server.poll(urgent).state is JobState.EXPIRED
    assert server.poll(relaxed).state is JobState.DONE
    assert server.stats().expired == 1
    with pytest.raises(RuntimeError, match="expired"):
        server.result(urgent)


def test_server_queue_wait_correct_at_time_zero(warm_store):
    """A job started at clock 0.0 must not report its whole latency as wait."""
    clock = FakeClock()
    server = RenderServer(warm_store, clock=clock)
    job = server.submit("lego", "dense", tile_size=64)  # 9 tiles
    server.step()  # starts at t=0.0 (falsy, but set)
    clock.advance(5.0)
    server.run_until_idle()
    result = server.result(job)
    assert result.queue_wait_s == 0.0
    assert result.latency_s == 5.0


def test_server_admission_rejects_over_max_pending(warm_store):
    server = RenderServer(warm_store, max_pending=1)
    admitted = server.submit("lego", "dense")
    rejected = server.submit("ficus", "dense")
    assert server.poll(rejected).state is JobState.REJECTED
    server.run_until_idle()
    assert server.poll(admitted).state is JobState.DONE
    # Capacity freed: the next submission is admitted again.
    retried = server.submit("ficus", "dense")
    server.run_until_idle()
    assert server.poll(retried).state is JobState.DONE
    assert server.stats().rejected == 1


def test_server_failure_is_isolated(warm_store):
    server = RenderServer(warm_store)
    bad = server.submit("lego", "no-such-pipeline")
    good = server.submit("lego", "dense")
    server.run_until_idle()
    view = server.poll(bad)
    assert view.state is JobState.FAILED
    assert "no-such-pipeline" in view.error
    assert server.poll(good).state is JobState.DONE
    with pytest.raises(RuntimeError, match="no-such-pipeline"):
        server.result(bad)


def test_server_unknown_job_id(warm_store):
    server = RenderServer(warm_store)
    with pytest.raises(KeyError, match="job-99999"):
        server.poll("job-99999")


def test_server_releases_bundle_and_validates_tile_size(warm_store):
    server = RenderServer(warm_store)
    job = server.submit("lego", "dense")
    server.run_until_idle()
    # A finished job must not pin per-tile shards (nor any bundle state —
    # the scheduler never holds bundles at all, only the backend's workers
    # do): the store's eviction would otherwise be defeated for retained
    # jobs.
    assert server._jobs[job].tile_images == {}
    assert server.result(job).memory_bytes > 0  # accounting was copied out
    with pytest.raises(ValueError, match="tile_size"):
        server.submit("lego", "dense", tile_size=0)
    with pytest.raises(ValueError, match="default_tile_size"):
        RenderServer(warm_store, default_tile_size=0)


def test_server_retention_forgets_oldest_finished(warm_store):
    """Long-running servers must not pin every frame ever rendered."""
    server = RenderServer(warm_store, max_finished_jobs=2)
    jobs = [server.submit("lego", "dense") for _ in range(3)]
    server.run_until_idle()
    with pytest.raises(KeyError, match="retention"):
        server.poll(jobs[0])  # oldest finished job was retired
    assert all(server.poll(j).state is JobState.DONE for j in jobs[1:])
    assert server.stats().completed == 3  # telemetry outlives retention
    with pytest.raises(ValueError):
        RenderServer(warm_store, max_finished_jobs=0)


def test_server_stats_snapshot_coherent(warm_store):
    server = RenderServer(warm_store)
    for _ in range(2):
        server.submit("lego", "spnerf", tile_size=200)
    server.run_until_idle()
    stats = server.stats()
    assert stats.submitted == stats.completed == 2
    assert stats.queue_depth == 0
    assert stats.tiles_rendered == 2 * 3  # 576 px / 200 -> 3 tiles each
    assert stats.num_rays == 2 * 576
    assert stats.throughput_rays_per_s > 0
    assert stats.latency_p95_s >= stats.latency_p50_s > 0
    assert stats.vertex_reuse_ratio > 1.0  # spnerf dedups vertex fetches
    assert stats.resident_bundles == len(warm_store.resident_keys())
    assert set(stats.as_dict()) == set(stats.__dataclass_fields__)


# ----------------------------------------------------------------------
# Traffic
# ----------------------------------------------------------------------

def test_poisson_workload_deterministic_and_shaped():
    items = poisson_workload(
        ["lego", "ficus"], ["dense", "spnerf"], rate_hz=50.0, duration_s=2.0,
        seed=7, high_priority_fraction=0.5,
    )
    assert items == poisson_workload(
        ["lego", "ficus"], ["dense", "spnerf"], rate_hz=50.0, duration_s=2.0,
        seed=7, high_priority_fraction=0.5,
    )
    assert 50 <= len(items) <= 150  # ~100 expected arrivals
    arrivals = [item.arrival_s for item in items]
    assert arrivals == sorted(arrivals) and all(0 < a < 2.0 for a in arrivals)
    priorities = {item.priority for item in items}
    assert priorities == {Priority.HIGH, Priority.NORMAL}


def test_closed_loop_workload_covers_mix():
    items = closed_loop_workload(["lego", "ficus"], ["dense", "spnerf"], 6, seed=3)
    assert len(items) == 6
    pairs = {(item.scene, item.pipeline) for item in items[:4]}
    assert len(pairs) == 4  # one full shuffled cycle covers the cross product


def test_replay_closed_loop_completes_everything(warm_store):
    server = RenderServer(warm_store)
    items = closed_loop_workload(["lego", "ficus"], ["dense"], 4, seed=0)
    job_ids = replay_closed_loop(server, items, concurrency=2)
    assert len(job_ids) == 4
    assert all(server.poll(job_id).state is JobState.DONE for job_id in job_ids)


def test_replay_open_loop_completes_everything(warm_store):
    server = RenderServer(warm_store)
    items = poisson_workload(["lego"], ["dense"], rate_hz=200.0, duration_s=0.05, seed=1)
    job_ids = replay_open_loop(server, items)
    assert len(job_ids) == len(items) > 0
    assert all(server.poll(job_id).state is JobState.DONE for job_id in job_ids)


def test_orbit_workload_wraps_cameras_at_fixed_cadence():
    items = orbit_workload(
        "lego", "dense", num_cameras=3, num_frames=7, frame_interval_s=0.5,
        client="viewer", start_s=1.0,
    )
    assert [item.camera_index for item in items] == [0, 1, 2, 0, 1, 2, 0]
    assert [item.arrival_s for item in items] == [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    assert all(item.client == "viewer" for item in items)
    assert items == orbit_workload(  # no randomness at all
        "lego", "dense", num_cameras=3, num_frames=7, frame_interval_s=0.5,
        client="viewer", start_s=1.0,
    )
    with pytest.raises(ValueError, match="num_cameras"):
        orbit_workload("lego", "dense", num_cameras=0, num_frames=1, frame_interval_s=0.1)


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------

def test_server_cancel_mid_render_stops_the_job(warm_store):
    server = RenderServer(warm_store, default_tile_size=97)
    job = server.submit("lego", "dense")
    server.step()  # first tile rendered, job mid-flight
    assert server.poll(job).state is JobState.RUNNING
    assert server.cancel(job) is True
    view = server.poll(job)
    assert view.state is JobState.CANCELLED
    with pytest.raises(RuntimeError, match="cancelled"):
        server.result(job)
    assert server.cancel(job) is False  # already terminal: no double counting
    assert server.stats().cancelled == 1
    assert not server.has_pending()  # the remaining tiles were dropped


def test_server_cancel_queued_job_before_any_tile(warm_store):
    server = RenderServer(warm_store)
    first = server.submit("lego", "dense")
    second = server.submit("lego", "dense")
    assert server.cancel(second) is True
    server.run_until_idle()
    assert server.poll(first).state is JobState.DONE
    assert server.poll(second).state is JobState.CANCELLED
    assert server.stats().completed == 1


def test_server_unknown_job_raises_typed_error(warm_store):
    server = RenderServer(warm_store)
    with pytest.raises(UnknownJobError):
        server.poll("job-31337")
    # Backward compatible: the typed error is still a KeyError.
    assert issubclass(UnknownJobError, KeyError)
    with pytest.raises(KeyError):
        server.cancel("job-31337")
