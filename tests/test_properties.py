"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.addressing import UnifiedAddressSpace
from repro.core.bitmap import OccupancyBitmap
from repro.core.hash_mapping import assign_subgrids, spatial_hash, subgrid_width
from repro.grid.interpolation import trilinear_vertices_and_weights
from repro.grid.quantization import quantize_int8
from repro.hardware.buffers import BlockCirculantInputBuffer
from repro.nerf.volume_rendering import composite_rays, compute_weights
from repro.vqrf.vector_quantization import build_codebook

# Keep hypothesis deadlines generous: numpy work inside examples is chunky.
SETTINGS = settings(max_examples=30, deadline=None)


# ----------------------------------------------------------------------
# Spatial hashing
# ----------------------------------------------------------------------
@SETTINGS
@given(
    positions=arrays(np.int64, (20, 3), elements=st.integers(0, 1023)),
    table_size=st.integers(1, 1 << 20),
)
def test_hash_always_in_range(positions, table_size):
    hashes = spatial_hash(positions, table_size)
    assert np.all(hashes < table_size)


@SETTINGS
@given(
    positions=arrays(np.int64, (30, 3), elements=st.integers(0, 255)),
    resolution=st.integers(2, 256),
    num_subgrids=st.integers(1, 128),
)
def test_subgrid_assignment_in_range(positions, resolution, num_subgrids):
    positions = positions % resolution
    ids = assign_subgrids(positions, resolution, num_subgrids)
    assert np.all(ids >= 0)
    assert np.all(ids < num_subgrids)
    # The width always covers the resolution.
    assert subgrid_width(resolution, num_subgrids) * num_subgrids >= resolution


# ----------------------------------------------------------------------
# Unified addressing
# ----------------------------------------------------------------------
@SETTINGS
@given(
    codebook_size=st.integers(1, 4096),
    rows=st.lists(st.integers(0, 10000), min_size=1, max_size=50),
)
def test_unified_addressing_roundtrip(codebook_size, rows):
    space = UnifiedAddressSpace(codebook_size=codebook_size, address_bits=18)
    rows = np.array([r % space.true_grid_capacity for r in rows])
    unified = space.encode_true_grid(rows)
    is_cb, local = space.decode(unified)
    assert not np.any(is_cb)
    assert np.array_equal(local, rows)


# ----------------------------------------------------------------------
# Bitmap
# ----------------------------------------------------------------------
@SETTINGS
@given(
    resolution=st.integers(2, 24),
    data=st.data(),
)
def test_bitmap_lookup_matches_membership(resolution, data):
    count = data.draw(st.integers(0, 40))
    positions = data.draw(
        arrays(np.int64, (count, 3), elements=st.integers(0, resolution - 1))
    )
    positions = np.unique(positions, axis=0) if count else positions.reshape(0, 3)
    bitmap = OccupancyBitmap(resolution, positions)
    assert bitmap.num_occupied == positions.shape[0]
    if positions.shape[0]:
        assert np.all(bitmap.lookup(positions))
    dense = bitmap.to_dense()
    assert dense.sum() == positions.shape[0]


# ----------------------------------------------------------------------
# Trilinear interpolation
# ----------------------------------------------------------------------
@SETTINGS
@given(
    coords=arrays(
        np.float64,
        (16, 3),
        elements=st.floats(0.0, 31.0, allow_nan=False, allow_infinity=False),
    )
)
def test_trilinear_weights_form_partition_of_unity(coords):
    vertices, weights = trilinear_vertices_and_weights(coords, resolution=32)
    assert np.all(weights >= -1e-12)
    assert np.allclose(weights.sum(axis=1), 1.0)
    assert vertices.min() >= 0 and vertices.max() <= 31


# ----------------------------------------------------------------------
# Quantization
# ----------------------------------------------------------------------
@SETTINGS
@given(
    tensor=arrays(
        np.float32,
        st.tuples(st.integers(1, 20), st.integers(1, 12)),
        elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False, width=32),
    )
)
def test_int8_roundtrip_error_bounded_by_half_scale(tensor):
    q = quantize_int8(tensor)
    error = np.abs(q.dequantize() - tensor)
    assert np.all(error <= q.scale * 0.5 + 1e-5)


# ----------------------------------------------------------------------
# Volume rendering
# ----------------------------------------------------------------------
@SETTINGS
@given(
    density=arrays(
        np.float64, (4, 12), elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False)
    ),
    rgb_seed=st.integers(0, 2 ** 16),
)
def test_compositing_is_convex(density, rgb_seed):
    rng = np.random.default_rng(rgb_seed)
    rgb = rng.uniform(0, 1, size=(4, 12, 3))
    t = np.tile(np.linspace(0.1, 1.0, 12), (4, 1))
    pixels, weights, acc = composite_rays(density, rgb, t)
    assert np.all(weights >= -1e-12)
    assert np.all(acc <= 1.0 + 1e-9)
    assert np.all(pixels <= 1.0 + 1e-9)
    assert np.all(pixels >= -1e-9)


@SETTINGS
@given(
    alphas=arrays(
        np.float64, (3, 10), elements=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
    )
)
def test_weights_never_exceed_alpha(alphas):
    weights = compute_weights(alphas)
    assert np.all(weights <= alphas + 1e-9)
    assert np.all(weights.sum(axis=-1) <= 1.0 + 1e-9)


# ----------------------------------------------------------------------
# Block-circulant buffer
# ----------------------------------------------------------------------
@SETTINGS
@given(
    num_vectors=st.integers(1, 40),
    vector_length=st.integers(4, 64),
    seed=st.integers(0, 2 ** 16),
)
def test_block_circulant_roundtrip_any_geometry(num_vectors, vector_length, seed):
    buf = BlockCirculantInputBuffer(vector_length=vector_length, block_size=4)
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(num_vectors, vector_length))
    assert np.allclose(buf.roundtrip(vectors), vectors)


# ----------------------------------------------------------------------
# Vector quantization
# ----------------------------------------------------------------------
@SETTINGS
@given(
    num_vectors=st.integers(4, 60),
    dim=st.integers(1, 8),
    entries=st.integers(1, 16),
    seed=st.integers(0, 2 ** 10),
)
def test_codebook_encode_always_valid(num_vectors, dim, entries, seed):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(num_vectors, dim))
    quantizer = build_codebook(vectors, num_entries=entries, num_iterations=2, seed=seed)
    assert quantizer.codebook.shape == (entries, dim)
    indices = quantizer.encode(vectors)
    assert indices.min() >= 0
    assert indices.max() < entries
    # Quantizing the codebook itself is lossless.
    assert quantizer.quantization_error(quantizer.codebook) <= 1e-6
