"""Tests for the execution-backend layer of :mod:`repro.serve`.

Covers what the backend refactor added on top of the scheduler tests in
``test_serve.py``:

* backends — the Serial/ThreadPool/ProcessPool contract: lifecycle,
  capacity, sticky ``(scene, pipeline)`` affinity, task picklability;
* cross-backend bit-identity — the acceptance invariant: the same frame,
  served under every backend, is byte-equal for every built-in pipeline;
* out-of-order completion — tiles applied in arbitrary order still
  reassemble the exact frame, and the reordering is counted;
* streaming — ``poll(include_tiles=True)`` exposes completed tiles of a
  running job incrementally;
* cost-aware admission — `max_pending_cost` budgets priced by the hardware
  layer's workload model, with reject and demote policies;
* store sharding — picklable :class:`SceneStoreSpec` recipes and per-shard
  memory budgets;
* telemetry — backend name, worker count, per-worker utilization and
  out-of-order counters surface in :class:`ServerStats`.

Scenes are deliberately tiny (16^3 grids, 24px frames); the process-pool
tests fork workers that rebuild them in well under a second.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig, available_pipelines
from repro.serve import (
    JobState,
    Priority,
    ProcessPoolBackend,
    RenderServer,
    SceneStore,
    SceneStoreSpec,
    SerialBackend,
    ThreadPoolBackend,
    TileResult,
    TileTask,
    make_backend,
    plan_tiles,
)
from repro.serve.backends import ExecutionBackend, _execute_tile

#: Small-but-real pipeline configuration shared by every store in this module.
SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}

#: An odd, non-divisor tile size: exercises the remainder tile everywhere.
TILE = 77


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


@pytest.fixture(scope="module")
def warm_store() -> SceneStore:
    """One unbounded store shared by read-only scheduler-side tests."""
    return make_store()


@pytest.fixture(scope="module")
def direct_frames(warm_store):
    """Per-pipeline direct engine renders of lego's first view at TILE chunks."""
    return {
        pipeline: warm_store.get("lego", pipeline)
        .engine.render(camera_indices=(0,), chunk_size=TILE)
        .image
        for pipeline in available_pipelines()
    }


# ----------------------------------------------------------------------
# plan_tiles hardening
# ----------------------------------------------------------------------

def test_plan_tiles_single_tile_when_tile_size_covers_frame():
    for tile_size in (100, 101, 10_000):
        tiles = plan_tiles(100, tile_size, camera_index=2)
        assert len(tiles) == 1
        assert (tiles[0].start, tiles[0].stop, tiles[0].camera_index) == (0, 100, 2)


def test_plan_tiles_non_divisible_remainder_is_last_tile():
    tiles = plan_tiles(100, 33)
    assert [t.num_pixels for t in tiles] == [33, 33, 33, 1]
    assert tiles[-1].stop == 100


def test_plan_tiles_exact_division_has_no_remainder_tile():
    tiles = plan_tiles(96, 32)
    assert [t.num_pixels for t in tiles] == [32, 32, 32]


def test_plan_tiles_zero_pixel_frames_error_is_explicit():
    with pytest.raises(ValueError, match="zero-pixel"):
        plan_tiles(0, 8)
    with pytest.raises(ValueError, match="zero-pixel"):
        plan_tiles(-5, 8)


def test_plan_tiles_rejects_non_integer_inputs():
    with pytest.raises(TypeError, match="num_pixels"):
        plan_tiles(100.0, 8)
    with pytest.raises(TypeError, match="tile_size"):
        plan_tiles(100, 8.5)
    with pytest.raises(TypeError, match="tile_size"):
        plan_tiles(100, True)
    # numpy integers are integers, not errors:
    assert len(plan_tiles(np.int64(100), np.int32(50))) == 2


# ----------------------------------------------------------------------
# Backend contract
# ----------------------------------------------------------------------

def test_make_backend_names_and_validation():
    assert isinstance(make_backend("serial"), SerialBackend)
    assert isinstance(make_backend("thread", num_workers=2), ThreadPoolBackend)
    assert isinstance(make_backend("process", num_workers=2), ProcessPoolBackend)
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend("gpu-cluster")
    with pytest.raises(ValueError, match="num_workers"):
        ThreadPoolBackend(num_workers=0)
    with pytest.raises(ValueError, match="queue_depth"):
        ThreadPoolBackend(num_workers=1, queue_depth=0)


def test_backend_lifecycle_is_guarded(warm_store):
    backend = SerialBackend()
    with pytest.raises(RuntimeError, match="not started"):
        backend.submit(TileTask("j", 0, "lego", "dense", 0, 0, 8))
    backend.start(warm_store)
    with pytest.raises(RuntimeError, match="already started"):
        backend.start(warm_store)
    backend.close()
    backend.start(warm_store)  # restart after close is allowed
    backend.close()


def test_tile_task_and_result_are_picklable():
    task = TileTask("job-1", 3, "lego", "spnerf", 0, 77, 154, transmittance_threshold=1e-3)
    clone = pickle.loads(pickle.dumps(task))
    assert clone == task and clone.key == ("lego", "spnerf")
    result = TileResult(job_id="job-1", tile_index=3, worker_id=1, image=np.ones((4, 3)))
    clone = pickle.loads(pickle.dumps(result))
    assert clone.job_id == "job-1" and np.array_equal(clone.image, result.image)


def test_pool_affinity_is_sticky_and_balanced():
    backend = ThreadPoolBackend(num_workers=3)
    keys = [(f"scene-{i}", pipe) for i in range(3) for pipe in ("dense", "spnerf")]
    first = {key: backend.worker_for(key) for key in keys}
    # Sticky: repeated lookups never move a key.
    assert all(backend.worker_for(key) == first[key] for key in keys)
    # Balanced: 6 keys over 3 workers land 2 apiece.
    counts = [list(first.values()).count(w) for w in range(3)]
    assert counts == [2, 2, 2]


def test_pool_capacity_is_tracked_per_worker():
    """A hot key backlogging its sticky worker must not stop dispatch for
    keys routed to idle workers."""
    backend = ThreadPoolBackend(num_workers=2, queue_depth=2)
    backend._inflight_per_worker = [2, 0]  # worker 0 saturated, worker 1 idle
    assert backend.has_capacity()
    backend._inflight_per_worker = [2, 2]
    assert not backend.has_capacity()


def test_pool_can_accept_is_per_key():
    """A key whose sticky worker is at depth defers; other keys still go."""
    backend = ThreadPoolBackend(num_workers=2, queue_depth=1)
    hot, cold = ("hot-scene", "dense"), ("cold-scene", "dense")
    backend._inflight_per_worker[backend.worker_for(hot)] = 1
    assert not backend.can_accept(hot)
    assert backend.can_accept(cold)  # affinity routes it to the idle worker
    assert backend.worker_for(cold) != backend.worker_for(hot)


def test_execute_tile_reports_errors_as_results(warm_store):
    bad = TileTask("job-9", 0, "lego", "no-such-pipeline", 0, 0, 8)
    result = _execute_tile(warm_store, bad, worker_id=5)
    assert result.error is not None and "no-such-pipeline" in result.error
    assert result.worker_id == 5 and result.image is None


# ----------------------------------------------------------------------
# Cross-backend bit-identity (the acceptance invariant)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
def test_served_frames_bit_identical_across_backends(backend_name, direct_frames):
    """Every built-in pipeline, served under every backend, must produce a
    frame byte-equal to the direct RenderEngine render.  Process workers
    rebuild their bundles from scratch, so this also proves the whole
    scene -> compression -> preprocessing path is deterministic."""
    store = make_store()
    with RenderServer(store, backend=make_backend(backend_name, num_workers=2)) as server:
        jobs = {
            pipeline: server.submit("lego", pipeline, tile_size=TILE)
            for pipeline in available_pipelines()
        }
        server.run_until_idle()
        for pipeline, job_id in jobs.items():
            assert server.poll(job_id).state is JobState.DONE, server.poll(job_id).error
            served = server.result(job_id).image
            assert served.tobytes() == direct_frames[pipeline].tobytes(), (
                f"{pipeline} served under {backend_name} diverged from direct render"
            )


@pytest.mark.parametrize("backend_name", ["thread", "process"])
def test_pool_backends_full_lifecycle(backend_name):
    """Priorities, failure isolation and telemetry under a real pool."""
    store = make_store()
    with RenderServer(store, backend=make_backend(backend_name, num_workers=2)) as server:
        good = [server.submit(scene, "dense", tile_size=200) for scene in ("lego", "ficus")]
        bad = server.submit("lego", "no-such-pipeline")
        high = server.submit("lego", "dense", priority=Priority.HIGH)
        server.run_until_idle()
        assert all(server.poll(j).state is JobState.DONE for j in good)
        assert server.poll(high).state is JobState.DONE
        view = server.poll(bad)
        assert view.state is JobState.FAILED and "no-such-pipeline" in view.error
        stats = server.stats()
        assert stats.backend == backend_name
        assert stats.num_workers == 2
        assert len(stats.worker_utilization) == 2
        assert stats.completed == 3 and stats.failed == 1
        # 576px / 200 -> 3 tiles per good job, plus the high job's single
        # default-chunk tile; the failed job renders nothing countable.
        assert stats.tiles_rendered == 2 * 3 + 1


def test_process_workers_shard_the_store():
    """Each worker owns its own store shard; the scheduler's store never
    builds a field (it only loads scenes for planning)."""
    store = make_store()
    with RenderServer(store, backend=ProcessPoolBackend(num_workers=2)) as server:
        jobs = [server.submit(s, p) for s in ("lego", "ficus") for p in ("dense", "spnerf")]
        server.run_until_idle()
        assert all(server.poll(j).state is JobState.DONE for j in jobs)
    assert store.resident_keys() == ()  # no bundle ever built scheduler-side
    assert store.stats().misses == 0


# ----------------------------------------------------------------------
# Out-of-order completion and streaming
# ----------------------------------------------------------------------

class ReversingBackend(ExecutionBackend):
    """Renders inline but releases completions newest-first — a worst-case
    reordering no real pool would sustain, applied deterministically."""

    name = "reversing"
    num_workers = 1

    def __init__(self, batch: int = 4) -> None:
        super().__init__()
        self._batch = batch
        self._store = None
        self._done = []
        #: While True, completions stay buffered (simulates slow workers).
        self.hold = False

    def _max_in_flight(self):
        return self._batch

    def _start(self, store):
        self._store = store

    def _submit(self, task):
        self._done.append(_execute_tile(self._store, task, worker_id=0))

    def _collect(self, block, timeout):
        if self.hold:
            return []
        done, self._done = self._done[::-1], []
        return done

    def _close(self):
        self._done = []


def test_out_of_order_tiles_reassemble_bit_identically(warm_store, direct_frames):
    server = RenderServer(warm_store, backend=ReversingBackend(batch=4))
    job = server.submit("lego", "spnerf", tile_size=TILE)
    server.run_until_idle()
    assert server.poll(job).state is JobState.DONE
    assert np.array_equal(server.result(job).image, direct_frames["spnerf"])
    stats = server.stats()
    assert stats.ooo_completions > 0  # the reordering actually happened
    assert stats.backend == "reversing"


def test_streaming_partial_results_expose_completed_tiles(warm_store):
    server = RenderServer(warm_store)  # serial: one tile per step
    job = server.submit("lego", "dense", tile_size=100)  # 576px -> 6 tiles
    server.step()
    server.step()
    view = server.poll(job, include_tiles=True)
    assert view.state is JobState.RUNNING
    assert view.tiles_done == 2 and len(view.completed_tiles) == 2
    # Streamed tiles are the exact pixels of the final frame.
    record = warm_store.get("lego", "dense")
    flat_direct = record.engine.render(
        camera_indices=(0,), chunk_size=100
    ).image.reshape(-1, 3)
    for update in view.completed_tiles:
        assert np.array_equal(update.image, flat_direct[update.tile.start:update.tile.stop])
    # Plain polls stay lightweight.
    assert server.poll(job).completed_tiles is None
    server.run_until_idle()
    # A DONE job exposes its full tile set, sliced back out of the assembled
    # frame, so late-attaching streaming consumers never miss the final tile.
    final = server.poll(job, include_tiles=True).completed_tiles
    assert len(final) == 6
    for update in final:
        assert np.array_equal(update.image, flat_direct[update.tile.start:update.tile.stop])


def test_late_results_for_expired_jobs_are_dropped(warm_store):
    """A job expiring with tiles in flight must not resurrect on completion."""

    class FakeClock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = FakeClock()
    backend = ReversingBackend(batch=2)
    server = RenderServer(warm_store, backend=backend, clock=clock)
    job = server.submit("lego", "dense", deadline_s=0.5, tile_size=64)
    backend.hold = True
    server.step()  # dispatches 2 tiles; their results stay in the backend
    assert backend.in_flight == 2
    clock.now = 1.0  # deadline passes with those tiles in flight
    backend.hold = False
    server.run_until_idle()  # expiry first, then the late results arrive
    assert server.poll(job).state is JobState.EXPIRED
    stats = server.stats()
    assert stats.expired == 1
    assert stats.dropped_tile_results == 2
    assert stats.tiles_rendered == 2  # the work still counts as worker time


# ----------------------------------------------------------------------
# Cost-aware admission
# ----------------------------------------------------------------------

def test_estimate_cost_scales_with_camera_geometry(warm_store):
    server = RenderServer(warm_store, max_pending_cost=1e18)
    cost = server.estimate_cost("lego")
    # 24x24 frame, 192 samples/ray under the default workload model.
    assert cost == pytest.approx(24 * 24 * 192)
    server_flops = RenderServer(warm_store, max_pending_cost=1e18, cost_metric="mlp_flops")
    assert server_flops.estimate_cost("lego") > 0


def test_cost_admission_rejects_over_budget(warm_store):
    per_frame = RenderServer(warm_store, max_pending_cost=1e18).estimate_cost("lego")
    server = RenderServer(warm_store, max_pending_cost=1.5 * per_frame)
    first = server.submit("lego", "dense")
    second = server.submit("lego", "dense")  # would exceed 1.5 frames of budget
    assert server.poll(first).state is JobState.QUEUED
    assert server.poll(first).estimated_cost == pytest.approx(per_frame)
    assert server.poll(second).state is JobState.REJECTED
    assert server.pending_cost() == pytest.approx(per_frame)
    stats = server.stats()
    assert stats.rejected == stats.rejected_over_cost == 1
    assert stats.pending_cost == pytest.approx(per_frame)
    server.run_until_idle()
    assert server.pending_cost() == 0.0  # budget released on completion
    third = server.submit("lego", "dense")
    server.run_until_idle()
    assert server.poll(third).state is JobState.DONE


def test_cost_admission_demote_policy(warm_store):
    per_frame = RenderServer(warm_store, max_pending_cost=1e18).estimate_cost("lego")
    server = RenderServer(
        warm_store, max_pending_cost=1.5 * per_frame, over_cost_policy="demote"
    )
    fits = server.submit("lego", "dense")
    demoted = server.submit("lego", "dense")  # would exceed 1.5 frames of budget
    assert server.poll(fits).priority is Priority.NORMAL
    view = server.poll(demoted)
    assert view.state is JobState.QUEUED and view.priority is Priority.LOW
    stats = server.stats()
    assert stats.demoted_over_cost == 1 and stats.rejected == 0
    server.run_until_idle()  # demoted work is still served, just last
    assert server.poll(demoted).state is JobState.DONE


def test_low_priority_class_drains_after_normal(warm_store):
    server = RenderServer(warm_store)
    low = server.submit("lego", "dense", priority=Priority.LOW)
    normal = server.submit("ficus", "dense")
    server.step()  # must pick the NORMAL job despite LOW's earlier submission
    assert server.poll(normal).state in (JobState.RUNNING, JobState.DONE)
    assert server.poll(low).state is JobState.QUEUED
    server.run_until_idle()
    assert server.poll(low).state is JobState.DONE


def test_count_rejection_keeps_requested_priority_and_no_demotion(warm_store):
    """A count-rejected submission must not also be demoted by the cost check."""
    per_frame = RenderServer(warm_store, max_pending_cost=1e18).estimate_cost("lego")
    server = RenderServer(
        warm_store,
        max_pending=1,
        max_pending_cost=1.2 * per_frame,
        over_cost_policy="demote",
    )
    server.submit("lego", "dense")
    rejected = server.submit("lego", "dense", priority=Priority.HIGH)
    view = server.poll(rejected)
    assert view.state is JobState.REJECTED
    assert view.priority is Priority.HIGH  # the caller's priority, untouched
    assert server.stats().demoted_over_cost == 0


def test_cost_admission_unknown_scene_falls_through_to_render_failure(warm_store):
    server = RenderServer(warm_store, max_pending_cost=1e18)
    job = server.submit("no-such-scene", "dense")
    assert server.poll(job).state is JobState.QUEUED  # admitted, not mispriced
    assert server.poll(job).estimated_cost is None
    server.run_until_idle()
    assert server.poll(job).state is JobState.FAILED


def test_server_validates_cost_knobs(warm_store):
    with pytest.raises(ValueError, match="max_pending_cost"):
        RenderServer(warm_store, max_pending_cost=0)
    with pytest.raises(ValueError, match="cost_metric"):
        RenderServer(warm_store, cost_metric="joules")
    with pytest.raises(ValueError, match="over_cost_policy"):
        RenderServer(warm_store, over_cost_policy="shed")


# ----------------------------------------------------------------------
# Store sharding
# ----------------------------------------------------------------------

def test_store_spec_roundtrips_through_pickle():
    store = make_store(memory_budget_bytes=1000, max_entries=7)
    spec = pickle.loads(pickle.dumps(store.spec()))
    clone = SceneStore.from_spec(spec)
    assert clone.memory_budget_bytes == 1000
    assert clone.max_entries == 7
    assert clone.config == store.config
    assert (clone.shard_index, clone.num_shards) == (0, 1)


def test_store_from_spec_divides_budget_across_shards():
    spec = SceneStoreSpec(memory_budget_bytes=1001, scene_kwargs=dict(SCENE_KWARGS))
    shards = [SceneStore.from_spec(spec, shard_index=i, num_shards=4) for i in range(4)]
    assert all(s.memory_budget_bytes == 251 for s in shards)  # ceil(1001/4)
    assert [s.shard_index for s in shards] == [0, 1, 2, 3]
    assert all(s.num_shards == 4 for s in shards)
    # An unbudgeted spec stays unbudgeted.
    free = SceneStore.from_spec(SceneStoreSpec(), shard_index=1, num_shards=2)
    assert free.memory_budget_bytes is None
    with pytest.raises(ValueError, match="shard_index"):
        SceneStore.from_spec(spec, shard_index=4, num_shards=4)
    with pytest.raises(ValueError, match="num_shards"):
        SceneStore.from_spec(spec, shard_index=0, num_shards=0)


def test_get_scene_loads_once_and_shares_with_bundles():
    loads = []
    store = make_store()
    original = store._load_scene

    def counting_loader(name):
        loads.append(name)
        return original(name)

    store._load_scene = counting_loader
    scene = store.get_scene("lego")
    assert store.get_scene("lego") is scene
    assert store.get("lego", "dense").scene is scene  # bundle reuses it
    assert loads == ["lego"]
