"""Tests for the content-addressed tile cache and temporal-coherence workloads.

The tile-caching contract (ISSUE 9 / ROADMAP "Tile caching + temporal
coherence"): renders are deterministic and bit-identical, so a tile keyed by
everything that determines its bytes — bundle identity, camera pose and
intrinsics, tile span, render knobs — can be replayed forever, *exactly*.
This suite proves:

* **TileCache** — LRU byte-budget accounting: hit/miss/insertion/eviction
  counters, recency-ordered eviction, oversize rejection, read-only served
  arrays, and ``make_cache`` refusing contradictory knobs loudly;
* **fingerprints** — tile keys react to every render input (bundle, pose,
  intrinsics, span, knobs) and to nothing else; differently configured
  stores never share bundle fingerprints;
* **scheduler integration** — cache hits skip the backend and stay
  bit-identical to direct renders under serial, thread *and* process
  backends; identical in-flight tiles across concurrent jobs collapse into
  one dispatch; the cache knobs validate like the backend knobs;
* **telemetry + tracing** — hit/dedupe counters flow through
  ``ServerStats``, cache hits appear as ``render-tile`` spans of cache
  origin, and deduped jobs carry Chrome-export flow links to the origin;
* **workloads** — the dolly / interpolated-walkthrough generators are
  deterministic in their seeds, never jump more than one rig step between
  consecutive frames (bounded pose delta), and an orbit replayed on a warm
  cache actually hits.

Scenes are the same tiny 16^3/24px ones as the other serve test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig
from repro.serve import (
    DEFAULT_CACHE_BUDGET_BYTES,
    JobState,
    RenderServer,
    SceneStore,
    TileCache,
    dolly_workload,
    interpolated_walkthrough_workload,
    make_cache,
    orbit_workload,
    popular_scene_workload,
    replay_closed_loop,
    tile_fingerprint,
)

SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}

#: 576px frames at this tile size shard into 8 tiles — enough structure for
#: dedupe and partial-tile caching to be exercised.
TILE = 77


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


class FakeClock:
    """A manually advanced clock for deterministic metadata stamps."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tile_image(value: float, pixels: int = 4) -> np.ndarray:
    return np.full((pixels, 3), value, dtype=np.float64)


# ----------------------------------------------------------------------
# TileCache unit behaviour
# ----------------------------------------------------------------------

def test_cache_counts_hits_misses_and_insertions():
    cache = TileCache(budget_bytes=None, clock=FakeClock())
    assert cache.get("a") is None
    assert cache.put("a", tile_image(1.0))
    np.testing.assert_array_equal(cache.get("a"), tile_image(1.0))
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.insertions) == (1, 1, 1)
    assert stats.hit_rate == 0.5
    assert stats.entries == 1
    assert stats.resident_bytes == tile_image(1.0).nbytes
    assert "a" in cache and "b" not in cache
    assert len(cache) == 1


def test_cache_evicts_lru_under_byte_budget():
    one_tile = tile_image(0.0).nbytes
    cache = TileCache(budget_bytes=3 * one_tile, clock=FakeClock())
    for index, key in enumerate("abc"):
        cache.put(key, tile_image(float(index)))
    # Touch the cold end so recency, not insertion order, decides eviction.
    assert cache.get("a") is not None
    cache.put("d", tile_image(3.0))
    assert "b" not in cache  # the true LRU went, not the refreshed "a"
    assert all(key in cache for key in "acd")
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.resident_bytes == 3 * one_tile


def test_cache_rejects_entries_larger_than_budget():
    cache = TileCache(budget_bytes=tile_image(0.0).nbytes, clock=FakeClock())
    assert not cache.put("huge", tile_image(1.0, pixels=64))
    assert len(cache) == 0
    assert cache.stats().rejected_oversize == 1
    # A budget-sized entry is still admitted.
    assert cache.put("fits", tile_image(1.0))


def test_cache_serves_read_only_isolated_copies():
    cache = TileCache(budget_bytes=None)
    source = tile_image(1.0)
    cache.put("a", source)
    source[:] = 99.0  # producer scribbles after insert: cache is unaffected
    served = cache.get("a")
    np.testing.assert_array_equal(served, tile_image(1.0))
    assert not served.flags.writeable
    with pytest.raises(ValueError):
        served[0, 0] = 2.0


def test_cache_reinsert_refreshes_instead_of_duplicating():
    one_tile = tile_image(0.0).nbytes
    cache = TileCache(budget_bytes=2 * one_tile, clock=FakeClock())
    cache.put("a", tile_image(1.0))
    cache.put("b", tile_image(2.0))
    cache.put("a", tile_image(1.0))  # refresh, not duplicate
    assert cache.stats().insertions == 2
    cache.put("c", tile_image(3.0))
    assert "b" not in cache and "a" in cache  # "a" was refreshed to the hot end


def test_cache_clear_counts_evictions():
    cache = TileCache(budget_bytes=None)
    cache.put("a", tile_image(1.0))
    cache.put("b", tile_image(2.0))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().evictions == 2
    assert cache.stats().resident_bytes == 0


def test_cache_validates_budget():
    with pytest.raises(ValueError, match="budget_bytes"):
        TileCache(budget_bytes=0)


def test_make_cache_resolves_and_refuses_contradictions():
    assert make_cache("off") is None
    assert make_cache(None) is None
    lru = make_cache("lru")
    assert isinstance(lru, TileCache)
    assert lru.budget_bytes == DEFAULT_CACHE_BUDGET_BYTES
    assert make_cache("lru", budget_bytes=1234).budget_bytes == 1234
    ready = TileCache(budget_bytes=99)
    assert make_cache(ready) is ready
    with pytest.raises(ValueError, match="already owns its budget"):
        make_cache(ready, budget_bytes=50)
    with pytest.raises(ValueError, match="cache='lru'"):
        make_cache("off", budget_bytes=50)
    with pytest.raises(ValueError, match="unknown cache mode"):
        make_cache("bogus")


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------

def test_tile_fingerprint_reacts_to_every_render_input():
    store = make_store()
    bundle = store.bundle_fingerprint("lego", "dense")
    cameras = store.get("lego", "dense").scene.cameras
    base = tile_fingerprint(bundle, cameras[0], 0, 77)
    assert tile_fingerprint(bundle, cameras[0], 0, 77) == base  # pure
    assert tile_fingerprint(bundle, cameras[0], 77, 154) != base  # span
    assert tile_fingerprint(bundle, cameras[0], 0, 78) != base  # tile size
    assert tile_fingerprint(bundle, cameras[0], 0, 77, 0.5) != base  # knobs
    other_bundle = store.bundle_fingerprint("lego", "spnerf")
    assert tile_fingerprint(other_bundle, cameras[0], 0, 77) != base  # pipeline


def test_bundle_fingerprint_distinguishes_store_configuration():
    store = make_store()
    assert store.bundle_fingerprint("lego", "dense") == store.bundle_fingerprint(
        "lego", "dense"
    )  # memoized and stable
    assert store.bundle_fingerprint("lego", "dense") != store.bundle_fingerprint(
        "ficus", "dense"
    )
    bigger = make_store(
        scene_kwargs={**SCENE_KWARGS, "num_samples": 32}
    )
    assert bigger.bundle_fingerprint("lego", "dense") != store.bundle_fingerprint(
        "lego", "dense"
    )


# ----------------------------------------------------------------------
# Scheduler integration: hits, dedupe, knobs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_cache_hits_are_bit_identical_under_every_backend(backend):
    """A frame served from the cache must be the exact bytes the backend
    would have produced — under every backend, including process workers."""
    store = make_store()
    direct = store.get("lego", "dense").engine.render(
        camera_indices=(0,), chunk_size=TILE
    ).image
    with RenderServer(
        store, backend=backend, default_tile_size=TILE, cache="lru"
    ) as server:
        first = server.submit("lego", "dense")
        server.run_until_idle()
        cold = server.cache.stats()
        assert cold.insertions > 0 and cold.hits == 0
        second = server.submit("lego", "dense")
        server.run_until_idle()
        warm = server.cache.stats()
        assert warm.hits == cold.insertions  # every tile of the rerun hit
        assert np.array_equal(server.result(first).image, direct)
        assert np.array_equal(server.result(second).image, direct)
        stats = server.stats()
        assert stats.cache_enabled
        assert stats.cache_hits == warm.hits
        assert 0.0 < stats.cache_hit_rate < 1.0
        assert stats.cache_bytes == warm.resident_bytes > 0


def test_cache_disabled_by_default():
    store = make_store()
    with RenderServer(store, default_tile_size=TILE) as server:
        job = server.submit("lego", "dense")
        server.run_until_idle()
        assert server.cache is None
        assert server.poll(job).state is JobState.DONE
        stats = server.stats()
        assert not stats.cache_enabled
        assert stats.cache_hits == 0 and stats.cache_bytes == 0


def test_server_cache_knobs_validate_like_backend_knobs():
    store = make_store()
    with pytest.raises(ValueError, match="cache='lru'"):
        RenderServer(store, cache_budget_bytes=1_000)
    with pytest.raises(ValueError, match="unknown cache mode"):
        RenderServer(store, cache="bogus")
    ready = TileCache(budget_bytes=1_000)
    with pytest.raises(ValueError, match="already owns its budget"):
        RenderServer(store, cache=ready, cache_budget_bytes=2_000)
    with RenderServer(store, cache=ready) as server:
        assert server.cache is ready


def test_identical_inflight_tiles_dedupe_across_jobs():
    """Two concurrent jobs for the same frame: one renders, the other
    attaches to the in-flight tiles — no second dispatch, same bits."""
    store = make_store()
    direct = store.get("lego", "dense").engine.render(
        camera_indices=(0,), chunk_size=TILE
    ).image
    with RenderServer(
        store, backend="thread", default_tile_size=TILE, cache="lru"
    ) as server:
        jobs = [server.submit("lego", "dense") for _ in range(2)]
        server.run_until_idle()
        stats = server.stats()
        assert stats.deduped_tiles > 0
        for job in jobs:
            assert server.poll(job).state is JobState.DONE
            assert np.array_equal(server.result(job).image, direct)
        # Dedupe means one render: busy time was paid once per tile.
        cache = server.cache.stats()
        assert cache.insertions + stats.deduped_tiles + cache.hits == 16


def test_warm_orbit_replay_hits_the_cache():
    """Satellite (d): replaying an orbit against a warm cache actually hits —
    the second revolution re-requests the first revolution's exact poses."""
    store = make_store(scene_kwargs={**SCENE_KWARGS, "num_views": 3})
    items = orbit_workload(
        "lego", "dense", num_cameras=3, num_frames=9, frame_interval_s=0.0
    )
    with RenderServer(
        store, default_tile_size=TILE, cache="lru"
    ) as server:
        job_ids = replay_closed_loop(server, items, concurrency=2)
        assert all(server.poll(j).state is JobState.DONE for j in job_ids)
        stats = server.stats()
        assert stats.cache_hit_rate > 0.0
        cache = server.cache.stats()
        # Revolutions 2 and 3 are all hits; only revolution 1 rendered.
        assert cache.hits == 2 * cache.insertions > 0
        # A revisited pose serves the first revolution's exact bytes.
        assert np.array_equal(
            server.result(job_ids[0]).image, server.result(job_ids[3]).image
        )


def test_cache_eviction_under_tiny_budget_keeps_serving():
    """A budget too small for one frame degrades to misses, never to errors."""
    store = make_store()
    with RenderServer(
        store, default_tile_size=TILE, cache="lru", cache_budget_bytes=2_000
    ) as server:
        jobs = [server.submit("lego", "dense") for _ in range(2)]
        server.run_until_idle()
        assert all(server.poll(j).state is JobState.DONE for j in jobs)
        cache = server.cache.stats()
        assert cache.evictions > 0
        assert cache.resident_bytes <= 2_000


# ----------------------------------------------------------------------
# Tracing: cache-hit spans, dedupe flow links
# ----------------------------------------------------------------------

def test_cache_hit_traces_record_origin_and_events():
    store = make_store()
    with RenderServer(
        store, default_tile_size=TILE, cache="lru"
    ) as server:
        server.submit("lego", "dense")
        server.run_until_idle()
        warm_job = server.submit("lego", "dense")
        server.run_until_idle()
        trace = server.tracer.get(warm_job)
        hit_spans = [
            s for s in trace.spans
            if s.name == "render-tile" and s.attrs.get("origin") == "cache"
        ]
        assert len(hit_spans) == 8  # every tile of the warm frame
        assert sum(1 for e in trace.events if e.name == "cache-hit") == 8
        # Cache hits are scheduler work, not render work.
        breakdown = server.stats().stage_breakdown
        assert breakdown["cache_hit"]["count"] == 8


def test_deduped_jobs_carry_flow_links_in_chrome_export():
    store = make_store()
    with RenderServer(
        store, backend="thread", default_tile_size=TILE, cache="lru"
    ) as server:
        jobs = [server.submit("lego", "dense") for _ in range(2)]
        server.run_until_idle()
        deduped = server.stats().deduped_tiles
        assert deduped > 0
        traces = {job: server.tracer.get(job) for job in jobs}
    attach_events = [
        e for t in traces.values() for e in t.events if e.name == "dedup-attach"
    ]
    assert len(attach_events) == deduped
    export = server.tracer.export_chrome()
    flows = [e for e in export["traceEvents"] if e.get("cat") == "flow"]
    starts = [e for e in flows if e["ph"] == "s"]
    finishes = [e for e in flows if e["ph"] == "f"]
    assert len(finishes) == deduped
    assert {e["id"] for e in finishes} <= {e["id"] for e in starts}
    assert all(e["bp"] == "e" for e in finishes)


# ----------------------------------------------------------------------
# Temporal-coherence workload generators
# ----------------------------------------------------------------------

def test_dolly_workload_ping_pongs_one_step_at_a_time():
    items = dolly_workload(
        "lego", "dense", num_cameras=4, num_frames=10, frame_interval_s=0.5
    )
    assert [i.camera_index for i in items] == [0, 1, 2, 3, 2, 1, 0, 1, 2, 3]
    assert [i.arrival_s for i in items] == [0.5 * f for f in range(10)]
    # Deterministic: no randomness at all.
    assert items == dolly_workload(
        "lego", "dense", num_cameras=4, num_frames=10, frame_interval_s=0.5
    )
    narrow = dolly_workload(
        "lego", "dense", num_cameras=6, num_frames=6, frame_interval_s=0.0, sweep=2
    )
    assert [i.camera_index for i in narrow] == [0, 1, 2, 1, 0, 1]
    with pytest.raises(ValueError, match="sweep"):
        dolly_workload("lego", "dense", num_cameras=4, num_frames=4,
                       frame_interval_s=0.0, sweep=9)
    with pytest.raises(ValueError, match="num_frames"):
        dolly_workload("lego", "dense", num_cameras=4, num_frames=0,
                       frame_interval_s=0.0)


def test_walkthrough_is_seed_deterministic_and_continuous():
    kwargs = dict(num_cameras=8, num_waypoints=5, frame_interval_s=0.1)
    first = interpolated_walkthrough_workload("lego", "dense", seed=7, **kwargs)
    again = interpolated_walkthrough_workload("lego", "dense", seed=7, **kwargs)
    assert first == again
    other = interpolated_walkthrough_workload("lego", "dense", seed=8, **kwargs)
    assert [i.camera_index for i in first] != [i.camera_index for i in other]
    # Consecutive frames never jump more than one rig step (ring distance).
    for trace in (first, other):
        for prev, item in zip(trace, trace[1:]):
            ahead = (item.camera_index - prev.camera_index) % 8
            behind = (prev.camera_index - item.camera_index) % 8
            assert min(ahead, behind) <= 1


def test_walkthrough_explicit_waypoints_take_shorter_arc():
    items = interpolated_walkthrough_workload(
        "lego", "dense", num_cameras=8, waypoints=[6, 1, 3]
    )
    # 6 -> 1 wraps through 7/0 (3 steps) instead of 5 steps backward.
    assert [i.camera_index for i in items] == [6, 7, 0, 1, 2, 3]
    with pytest.raises(ValueError, match="out of range"):
        interpolated_walkthrough_workload(
            "lego", "dense", num_cameras=4, waypoints=[0, 9]
        )
    with pytest.raises(ValueError, match="at least 2"):
        interpolated_walkthrough_workload(
            "lego", "dense", num_cameras=4, waypoints=[1]
        )


def test_walkthrough_pose_delta_is_bounded_on_the_real_rig():
    """The continuity promise in pose space: consecutive frames move the
    camera no farther than one rig step does anywhere on the ring."""
    store = make_store(scene_kwargs={**SCENE_KWARGS, "num_views": 8})
    cameras = store.get("lego", "dense").scene.cameras
    positions = [np.asarray(c.camera_to_world)[:3, 3] for c in cameras]
    rig_step = max(
        float(np.linalg.norm(positions[(i + 1) % 8] - positions[i]))
        for i in range(8)
    )
    items = interpolated_walkthrough_workload(
        "lego", "dense", num_cameras=8, num_waypoints=6, seed=3
    )
    for prev, item in zip(items, items[1:]):
        delta = float(np.linalg.norm(
            positions[item.camera_index] - positions[prev.camera_index]
        ))
        assert delta <= rig_step + 1e-9


def test_popular_scene_workload_concentrates_in_phase():
    items = popular_scene_workload(
        ["lego", "ficus"], "dense", num_clients=4, num_cameras=3,
        num_frames=6, frame_interval_s=0.25, popular_fraction=0.5, seed=1,
    )
    assert len(items) == 24
    assert items == sorted(items, key=lambda i: (i.arrival_s, i.client))
    by_client = {}
    for item in items:
        by_client.setdefault(item.client, []).append(item)
    assert set(by_client) == {f"client-{i:03d}" for i in range(4)}
    popular = [c for c, group in by_client.items()
               if all(i.scene == "lego" for i in group)]
    assert len(popular) >= 2
    # Popular clients orbit in phase: same camera at the same arrival time —
    # the concurrent-identical-tile shape the dedupe machinery exists for.
    first, second = (by_client[c] for c in sorted(popular)[:2])
    assert [(i.arrival_s, i.camera_index) for i in first] == [
        (i.arrival_s, i.camera_index) for i in second
    ]
    background = [c for c in by_client if c not in popular]
    assert all(
        item.scene == "ficus" for c in background for item in by_client[c]
    )
    # Deterministic in seed.
    assert items == popular_scene_workload(
        ["lego", "ficus"], "dense", num_clients=4, num_cameras=3,
        num_frames=6, frame_interval_s=0.25, popular_fraction=0.5, seed=1,
    )
