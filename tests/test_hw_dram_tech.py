"""Tests for the technology constants and the DRAM model."""

import pytest

from repro.hardware.dram import DRAM_CONFIGS, DRAMConfig, DRAMModel
from repro.hardware.tech import TSMC28, TechnologyParameters


class TestTechnology:
    def test_clock_is_one_ghz(self):
        assert TSMC28.clock_hz == pytest.approx(1.0e9)
        assert TSMC28.cycle_time_s == pytest.approx(1.0e-9)

    def test_sram_area_scales_linearly(self):
        one_kb = TSMC28.sram_area_mm2(1024)
        four_kb = TSMC28.sram_area_mm2(4096)
        assert four_kb == pytest.approx(4 * one_kb)

    def test_leakage_positive(self):
        assert TSMC28.sram_leakage_w(1024 * 100) > 0
        assert TSMC28.logic_leakage_w(5.0) > 0

    def test_custom_technology(self):
        tech = TechnologyParameters(name="test", clock_hz=2e9)
        assert tech.cycle_time_s == pytest.approx(0.5e-9)


class TestDRAMConfigs:
    def test_paper_memories_present(self):
        assert set(DRAM_CONFIGS) >= {"lpddr4-3200", "lpddr4-1600", "lpddr5", "hbm2"}

    def test_table1_bandwidths(self):
        assert DRAM_CONFIGS["lpddr4-3200"].peak_bandwidth_gbps == pytest.approx(59.7)
        assert DRAM_CONFIGS["lpddr5"].peak_bandwidth_gbps == pytest.approx(102.4)
        assert DRAM_CONFIGS["hbm2"].peak_bandwidth_gbps == pytest.approx(1555.0)
        assert DRAM_CONFIGS["lpddr4-1600"].peak_bandwidth_gbps == pytest.approx(17.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(name="bad", peak_bandwidth_gbps=0.0, access_energy_pj_per_byte=10)
        with pytest.raises(ValueError):
            DRAMConfig(
                name="bad", peak_bandwidth_gbps=10, access_energy_pj_per_byte=10,
                streaming_efficiency=1.5,
            )


class TestDRAMModel:
    def test_streaming_faster_than_random(self):
        model = DRAMModel(DRAM_CONFIGS["lpddr4-3200"])
        assert model.transfer_time_s(1e9, streaming=True) < model.transfer_time_s(1e9, streaming=False)

    def test_transfer_time_linear_in_bytes(self):
        model = DRAMModel(DRAM_CONFIGS["lpddr4-3200"])
        assert model.transfer_time_s(2e6) == pytest.approx(2 * model.transfer_time_s(1e6))

    def test_zero_bytes_is_free(self):
        model = DRAMModel(DRAM_CONFIGS["lpddr5"])
        assert model.transfer_time_s(0) == 0.0
        assert model.transfer_energy_j(0) == 0.0
        assert model.transactions(0) == 0

    def test_energy_per_byte(self):
        config = DRAM_CONFIGS["lpddr4-3200"]
        model = DRAMModel(config)
        assert model.transfer_energy_j(1e6) == pytest.approx(
            1e6 * config.access_energy_pj_per_byte * 1e-12
        )

    def test_transactions_round_up(self):
        model = DRAMModel(DRAM_CONFIGS["lpddr4-3200"])
        assert model.transactions(65) == 2
        assert model.transactions(64) == 1

    def test_average_power_includes_static(self):
        model = DRAMModel(DRAM_CONFIGS["lpddr4-3200"])
        assert model.average_power_w(0, 1.0) == pytest.approx(model.config.static_power_w)
        assert model.average_power_w(1e9, 1.0) > model.config.static_power_w
