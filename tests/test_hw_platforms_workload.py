"""Tests for platform specs (Table I) and the frame-workload constructors."""

import pytest

from repro.hardware.platforms import PLATFORMS
from repro.hardware.workload import (
    FrameWorkload,
    workload_from_render,
    workload_from_scene,
)


class TestPlatforms:
    def test_table1_rows_present(self):
        assert set(PLATFORMS) == {"a100", "onx", "xnx"}

    def test_table1_specs(self):
        a100, onx, xnx = PLATFORMS["a100"], PLATFORMS["onx"], PLATFORMS["xnx"]
        assert a100.power_w == 400 and onx.power_w == 25 and xnx.power_w == 20
        assert a100.technology_nm == 7 and onx.technology_nm == 8 and xnx.technology_nm == 16
        assert xnx.l2_cache_bytes == 512 * 1024
        assert onx.l2_cache_bytes == 4 * 1024 * 1024
        assert a100.fp16_tflops == pytest.approx(78.0)
        assert xnx.fp16_tflops == pytest.approx(1.69)

    def test_edge_platforms_have_worse_gather_behaviour(self):
        assert PLATFORMS["xnx"].gather_efficiency < PLATFORMS["a100"].gather_efficiency
        assert PLATFORMS["xnx"].l2_reuse_factor < PLATFORMS["a100"].l2_reuse_factor


class TestFrameWorkload:
    def test_paper_frame_geometry(self):
        workload = FrameWorkload(scene_name="test")
        assert workload.num_rays == 800 * 800

    def test_derived_counts_consistent(self):
        workload = FrameWorkload(
            scene_name="t", active_samples_per_ray=3.0, processed_samples_per_ray=40.0
        )
        assert workload.active_samples == 3 * workload.num_rays
        assert workload.processed_samples == 40 * workload.num_rays
        assert workload.vertex_lookups == workload.processed_samples * 8
        assert workload.mlp_macs == workload.active_samples * workload.mlp_spec.macs_per_sample

    def test_scaled_to_changes_ray_count_only(self):
        workload = FrameWorkload(scene_name="t", active_samples_per_ray=2.0)
        scaled = workload.scaled_to(100, 100)
        assert scaled.num_rays == 10000
        assert scaled.active_samples_per_ray == workload.active_samples_per_ray


class TestWorkloadConstructors:
    def test_analytic_workload_ranges(self, small_scene):
        workload = workload_from_scene(small_scene)
        assert 0.0 < workload.inside_fraction <= 1.0
        assert 0.0 < workload.active_samples_per_ray < workload.samples_per_ray
        assert workload.processed_samples_per_ray <= workload.samples_per_ray
        assert workload.occupancy == pytest.approx(small_scene.occupancy_fraction())

    def test_measured_workload_ranges(self, spnerf_bundle):
        workload = workload_from_render(spnerf_bundle, probe_resolution=24)
        assert workload.scene_name == "lego"
        assert 0.0 < workload.active_samples_per_ray < workload.samples_per_ray
        assert workload.active_samples_per_ray <= workload.processed_samples_per_ray
        assert workload.spnerf_model_bytes > 0
        assert workload.vqrf_restored_bytes > workload.spnerf_model_bytes

    def test_measured_workload_includes_memory_breakdown(self, spnerf_bundle):
        workload = workload_from_render(spnerf_bundle, probe_resolution=16)
        assert set(workload.spnerf_memory) >= {"hash_tables", "bitmap", "codebook", "total"}

    def test_denser_scene_has_more_active_samples(self, small_scene, sparse_scene):
        dense_wl = workload_from_scene(small_scene)
        sparse_wl = workload_from_scene(sparse_scene)
        if small_scene.occupancy_fraction() > sparse_scene.occupancy_fraction():
            assert dense_wl.active_samples_per_ray >= sparse_wl.active_samples_per_ray
