"""Shared fixtures.

All fixtures are deliberately small (tiny grids, few pixels, small codebooks)
so the full suite runs in a couple of minutes; the paper-scale configurations
are exercised by the benchmark harnesses instead.  Expensive objects are
session-scoped and never mutated by tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpNeRFConfig
from repro.core.pipeline import SpNeRFBundle, build_spnerf_from_scene
from repro.datasets.synthetic import SyntheticScene, load_scene
from repro.grid.voxel_grid import GridSpec, SparseVoxelGrid, VoxelGrid
from repro.hardware.workload import FrameWorkload, workload_from_scene
from repro.vqrf.model import VQRFModel, compress_scene

#: Small-but-meaningful defaults shared by the fixtures below.
TEST_RESOLUTION = 32
TEST_IMAGE_SIZE = 40
TEST_SAMPLES = 32
TEST_CODEBOOK = 64
TEST_CONFIG = SpNeRFConfig(num_subgrids=8, hash_table_size=1024, codebook_size=TEST_CODEBOOK)


@pytest.fixture(scope="session")
def small_scene() -> SyntheticScene:
    """A small lego scene shared (read-only) across the suite."""
    return load_scene(
        "lego",
        resolution=TEST_RESOLUTION,
        image_size=TEST_IMAGE_SIZE,
        num_views=2,
        num_samples=TEST_SAMPLES,
    )


@pytest.fixture(scope="session")
def sparse_scene() -> SyntheticScene:
    """A sparser scene (ficus) for occupancy-sensitive tests."""
    return load_scene(
        "ficus",
        resolution=TEST_RESOLUTION,
        image_size=TEST_IMAGE_SIZE,
        num_views=2,
        num_samples=TEST_SAMPLES,
    )


@pytest.fixture(scope="session")
def small_sparse_grid(small_scene) -> SparseVoxelGrid:
    return small_scene.sparse_grid


@pytest.fixture(scope="session")
def vqrf_model(small_scene) -> VQRFModel:
    """VQRF compression of the small scene with a small codebook."""
    return compress_scene(
        small_scene.sparse_grid,
        codebook_size=TEST_CODEBOOK,
        prune_fraction=0.05,
        keep_fraction=0.3,
        kmeans_iterations=3,
        seed=0,
    )


@pytest.fixture(scope="session")
def spnerf_bundle(small_scene, vqrf_model) -> SpNeRFBundle:
    """Full scene -> VQRF -> SpNeRF bundle used by pipeline-level tests."""
    return build_spnerf_from_scene(small_scene, TEST_CONFIG, vqrf_model=vqrf_model)


@pytest.fixture(scope="session")
def frame_workload(small_scene, spnerf_bundle) -> FrameWorkload:
    """Analytic per-frame workload for hardware tests."""
    return workload_from_scene(
        small_scene, spnerf_memory=spnerf_bundle.spnerf_model.memory_breakdown()
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def tiny_grid() -> VoxelGrid:
    """A hand-filled 8^3 grid with a handful of occupied vertices."""
    spec = GridSpec(resolution=8, feature_dim=4)
    grid = VoxelGrid(spec)
    occupied = [(1, 2, 3), (4, 4, 4), (7, 0, 5), (2, 6, 1)]
    for i, (x, y, z) in enumerate(occupied):
        grid.density[x, y, z] = 5.0 + i
        grid.features[x, y, z] = np.arange(4) * 0.1 + i
    return grid


@pytest.fixture(scope="session")
def paper_workload() -> FrameWorkload:
    """A paper-scale frame workload (160^3 grid, 800x800 frame).

    Hardware "shape" tests (memory-bound edge GPUs, real-time SpNeRF, power
    breakdown) assert against this workload so they reflect the regime the
    paper evaluates, independent of the deliberately tiny test scenes.
    """
    spnerf_memory = {
        "hash_tables": 64 * 32768 * 4,
        "bitmap": 160 ** 3 // 8,
        "codebook": 4096 * 12 * 2,
        "true_voxel_grid": 54_000 * 12,
    }
    spnerf_memory["total"] = sum(spnerf_memory.values())
    return FrameWorkload(
        scene_name="paper-average",
        samples_per_ray=192,
        inside_fraction=0.65,
        active_samples_per_ray=2.2,
        processed_samples_per_ray=110.0,
        occupancy=0.044,
        grid_resolution=160,
        num_nonzero_voxels=180_000,
        spnerf_memory=spnerf_memory,
        vqrf_restored_bytes=160 ** 3 * 13 * 4,
        vqrf_compressed_bytes=3_000_000,
    )
