"""Failure-injection tests: the serve layer must survive its workers.

The elastic-execution contract (ISSUE 7 / ROADMAP "Elastic, failure-tolerant
execution"): tile renders are deterministic, so duplicate completions are
droppable — which makes respawn, speculative re-dispatch and work stealing
safe by construction.  This suite stages reproducible disasters with
:class:`FaultPlan` and proves the guarantees hold:

* **supervision + respawn** — a process worker killed mid-job is replaced
  from the picklable store spec, its in-flight tiles re-dispatched, and
  every job still reaches DONE with frames bit-identical to direct renders;
* **poisoned builds** — a bundle build that deterministically fails takes
  down only the jobs that need it, with a typed error, while the worker and
  every other job keep serving;
* **hedging** — tiles stuck on a delayed worker are speculatively duplicated
  onto a healthy one; first completion wins, the loser is dropped;
* **work stealing** — a hot key migrates off a saturated shard to an idle
  one, at a bounded rate;
* **teardown** — close() with work in flight leaks no threads and never
  hangs on a dead worker's queue;
* **telemetry** — the respawn/redispatch/hedge/steal counters flow through
  ``ServerStats.as_dict()`` and ``GET /v1/stats``, and stay zero on the
  serial backend.

Scenes are the same tiny 16^3/24px ones as the other serve test modules.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.api import PipelineConfig, SpNeRFConfig
from repro.serve import (
    FaultPlan,
    JobState,
    PoisonedBundleError,
    ProcessPoolBackend,
    RenderServer,
    SceneStore,
    ThreadPoolBackend,
    TileTask,
    closed_loop_workload,
    make_backend,
    replay_closed_loop,
    summarize_outcomes,
)

SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}

#: 576px frames at this tile size shard into 8 tiles — enough in-flight
#: structure for kills and hedges to land mid-job.
TILE = 77


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


@pytest.fixture(scope="module")
def direct_frames():
    """Direct engine renders to compare served frames against, bit for bit."""
    store = make_store()
    return {
        (scene, "dense"): store.get(scene, "dense")
        .engine.render(camera_indices=(0,), chunk_size=TILE)
        .image
        for scene in ("lego", "ficus")
    }


# ----------------------------------------------------------------------
# FaultPlan and knob plumbing
# ----------------------------------------------------------------------

def test_fault_plan_validates_and_pickles():
    plan = FaultPlan(kill_worker=1, kill_after_tiles=3, poison_key=("lego", "vqrf"))
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    stripped = plan.without_kill()
    assert stripped.kill_worker is None
    assert stripped.poison_key == ("lego", "vqrf")  # poison/delay survive respawn
    with pytest.raises(ValueError, match="kill_after_tiles"):
        FaultPlan(kill_worker=0, kill_after_tiles=0)
    with pytest.raises(ValueError, match="delay_s"):
        FaultPlan(delay_worker=0, delay_s=-1.0)


def test_make_backend_passes_through_elasticity_knobs():
    backend = make_backend("process", num_workers=2, queue_depth=5,
                           hedge_multiplier=3.0, steal_interval_s=0.5)
    assert isinstance(backend, ProcessPoolBackend)
    assert backend.queue_depth == 5
    assert backend.hedge_multiplier == 3.0
    assert backend.steal_interval_s == 0.5
    # queue_depth is validated wherever it enters.
    with pytest.raises(ValueError, match="queue_depth"):
        make_backend("process", num_workers=2, queue_depth=0)
    with pytest.raises(ValueError, match="queue_depth"):
        make_backend("thread", num_workers=2, queue_depth=-3)
    assert make_backend("thread", queue_depth=4).queue_depth == 4


def test_make_backend_refuses_unsupported_knobs():
    with pytest.raises(ValueError, match="serial"):
        make_backend("serial", queue_depth=4)
    with pytest.raises(ValueError, match="serial"):
        make_backend("serial", fault_plan=FaultPlan(delay_worker=0, delay_s=0.1))
    with pytest.raises(ValueError, match="process backend"):
        make_backend("thread", hedge_multiplier=2.0)
    with pytest.raises(ValueError, match="process backend"):
        ThreadPoolBackend(num_workers=2, fault_plan=FaultPlan(kill_worker=0))
    with pytest.raises(ValueError, match="hedge_multiplier"):
        ProcessPoolBackend(num_workers=2, hedge_multiplier=0.0)
    with pytest.raises(ValueError, match="steal_interval_s"):
        ProcessPoolBackend(num_workers=2, steal_interval_s=-1.0)


def test_store_poison_is_a_typed_build_failure():
    store = make_store()
    resident = store.get("lego", "dense")
    assert resident is not None
    store.poison("lego", "dense")
    assert not store.contains("lego", "dense")  # poison evicts residency
    with pytest.raises(PoisonedBundleError, match="poisoned"):
        store.get("lego", "dense")
    # Scene-level planning reads still work: only the bundle is poisoned.
    assert store.get_scene("lego") is not None
    assert store.get("lego", "spnerf") is not None


# ----------------------------------------------------------------------
# Supervision + respawn (the tentpole invariant)
# ----------------------------------------------------------------------

def test_worker_kill_mid_job_heals_and_stays_bit_identical(direct_frames):
    """Kill a process worker mid-job: the shard respawns from the spec, its
    in-flight tiles are re-dispatched, and every job completes with frames
    byte-equal to direct renders — the scheduler never sees an exception."""
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2, fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=2)
    )
    with RenderServer(store, backend=backend) as server:
        # First key touched routes to worker 0 (the doomed one).
        lego = server.submit("lego", "dense", tile_size=TILE)
        ficus = server.submit("ficus", "dense", tile_size=TILE)
        server.run_until_idle()
        for job, key in ((lego, ("lego", "dense")), (ficus, ("ficus", "dense"))):
            view = server.poll(job)
            assert view.state is JobState.DONE, view.error
            assert server.result(job).image.tobytes() == direct_frames[key].tobytes()
        stats = server.stats()
    assert stats.worker_respawns >= 1
    assert stats.redispatched_tiles >= 1
    assert stats.failed == 0
    assert stats.completed == 2
    # The counters ride along in the JSON-ready snapshot.
    as_dict = stats.as_dict()
    assert as_dict["worker_respawns"] == stats.worker_respawns
    assert as_dict["redispatched_tiles"] == stats.redispatched_tiles


def test_cross_job_dedupe_survives_a_worker_kill(direct_frames):
    """Concurrent identical jobs collapse onto one dispatch (ISSUE 9's
    in-flight dedupe) even while the fault plan kills the worker rendering
    the shared tiles: the respawned shard's re-dispatched tiles feed every
    attached job, and all of them complete bit-identically."""
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2, fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=2)
    )
    with RenderServer(store, backend=backend, cache="lru") as server:
        jobs = [server.submit("lego", "dense", tile_size=TILE) for _ in range(3)]
        server.run_until_idle()
        stats = server.stats()
        for job in jobs:
            view = server.poll(job)
            assert view.state is JobState.DONE, view.error
            assert (
                server.result(job).image.tobytes()
                == direct_frames[("lego", "dense")].tobytes()
            )
    assert stats.worker_respawns >= 1
    assert stats.deduped_tiles > 0
    assert stats.failed == 0
    assert stats.completed == 3


def test_dead_worker_is_detected_behind_a_full_result_queue():
    """Supervision runs on every collect — a dead worker must not hide while
    the surviving workers keep the result queue stocked (the old health
    check only fired on an empty blocking collect)."""
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2, fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=1)
    )
    backend.start(store)
    try:
        tiles = [(i * 96, (i + 1) * 96) for i in range(6)]
        for index, (start, stop) in enumerate(tiles):
            backend.submit(TileTask("job-a", index, "lego", "dense", 0, start, stop))
        for index, (start, stop) in enumerate(tiles):
            backend.submit(TileTask("job-b", index, "ficus", "dense", 0, start, stop))
        seen = {}
        deadline = time.monotonic() + 60.0
        while backend.in_flight > 0 and time.monotonic() < deadline:
            # Strictly non-blocking collects: the supervision sweep is the
            # only thing that can notice the corpse here.
            for result in backend.collect(block=False):
                if not result.duplicate:
                    seen[(result.job_id, result.tile_index)] = result
            time.sleep(0.01)
        assert backend.in_flight == 0
        assert len(seen) == 12
        assert all(r.error is None for r in seen.values())
        assert backend.worker_respawns >= 1
        assert backend.redispatched_tiles >= 1
    finally:
        backend.close()


def test_partitioned_host_is_declared_dead_behind_a_busy_scheduler():
    """The remote-backend twin of the test above (ISSUE 10): a *partitioned*
    host keeps its socket open but goes silent, so neither a connection
    close nor a torn frame will ever fire — only the heartbeat deadline can
    declare it dead.  The scheduler is kept busy with strictly non-blocking
    collects while the survivor streams results, the silent host is
    condemned mid-job, its in-flight tiles redispatch, and every unique
    tile completes bit-identically with zero errors."""
    from repro.serve import LocalHostCluster

    store = make_store()
    with LocalHostCluster(2) as cluster:
        backend = make_backend(
            "remote", hosts=cluster.addresses,
            heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0,
            backoff_base_s=0.05,
            fault_plan=FaultPlan(partition_host=0),
        )
        backend.start(store)
        try:
            tiles = [(i * 96, (i + 1) * 96) for i in range(6)]
            for index, (start, stop) in enumerate(tiles):
                backend.submit(TileTask("job-a", index, "lego", "dense", 0, start, stop))
            for index, (start, stop) in enumerate(tiles):
                backend.submit(TileTask("job-b", index, "ficus", "dense", 0, start, stop))
            seen = {}
            deadline = time.monotonic() + 90.0
            while backend.in_flight > 0 and time.monotonic() < deadline:
                # Strictly non-blocking collects: heartbeat supervision is
                # the only thing that can notice the silent host here.
                for result in backend.collect(block=False):
                    if not result.duplicate:
                        seen[(result.job_id, result.tile_index)] = result
                time.sleep(0.01)
            assert backend.in_flight == 0
            assert len(seen) == 12
            assert all(r.error is None for r in seen.values())
            assert backend.host_losses >= 1
            assert backend.redispatched_tiles >= 1
            # Redispatched tiles still match a direct render sharded the
            # same way, byte for byte (tile images are flat (P, 3) runs,
            # and bit-identity is per chunk partition — so chunk at 96).
            flat = {
                job_id: store.get(scene, "dense")
                .engine.render(camera_indices=(0,), chunk_size=96)
                .image.reshape(-1, 3)
                for job_id, scene in (("job-a", "lego"), ("job-b", "ficus"))
            }
            for (job_id, index), result in seen.items():
                start, stop = tiles[index]
                assert result.image.tobytes() == flat[job_id][start:stop].tobytes()
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Poison + kill under a multi-job closed-loop workload (acceptance)
# ----------------------------------------------------------------------

def test_chaos_closed_loop_acceptance(direct_frames):
    """The ISSUE's acceptance scenario: kill a worker mid-job AND poison one
    bundle build under a multi-job closed-loop workload.  Every admitted job
    reaches DONE bit-identically except the poisoned ones, which fail with
    the typed error; respawn/redispatch counters prove the healing ran."""
    store = make_store()
    plan = FaultPlan(kill_worker=0, kill_after_tiles=3, poison_key=("lego", "spnerf"))
    backend = ProcessPoolBackend(num_workers=2, fault_plan=plan)
    with RenderServer(store, backend=backend, default_tile_size=TILE) as server:
        items = closed_loop_workload(["lego", "ficus"], ["dense"], num_requests=6, seed=3)
        job_ids = replay_closed_loop(server, items, concurrency=3)
        poisoned = server.submit("lego", "spnerf", tile_size=TILE)
        server.run_until_idle()
        outcomes = summarize_outcomes(server, job_ids)
        assert outcomes == {"done": 6}, outcomes  # zero infrastructure failures
        for job_id in job_ids:
            result = server.result(job_id)
            key = (result.scene, result.pipeline)
            assert result.image.tobytes() == direct_frames[key].tobytes(), (
                f"{key} diverged from the direct render under chaos"
            )
        view = server.poll(poisoned)
        assert view.state is JobState.FAILED
        assert "PoisonedBundleError" in view.error  # typed, not an infra crash
        stats = server.stats()
    assert stats.worker_respawns >= 1
    assert stats.redispatched_tiles >= 1
    assert stats.failed == 1  # the poisoned job and nothing else
    assert stats.completed == 6


# ----------------------------------------------------------------------
# Speculative hedging
# ----------------------------------------------------------------------

def test_hedging_rescues_tiles_from_a_slow_worker(direct_frames):
    """A worker delayed per tile makes its key's tiles exceed the hedge
    threshold; duplicates dispatch to the healthy worker and the first
    completion wins, bit-identically."""
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2,
        fault_plan=FaultPlan(delay_worker=1, delay_s=0.25),
        hedge_multiplier=2.0,
        hedge_min_samples=3,
    )
    with RenderServer(store, backend=backend) as server:
        # lego/dense routes to (fast) worker 0 and seeds the p95 samples;
        # ficus/dense routes to worker 1, which crawls.
        fast = server.submit("lego", "dense", tile_size=TILE)
        slow = server.submit("ficus", "dense", tile_size=TILE)
        server.run_until_idle()
        for job, key in ((fast, ("lego", "dense")), (slow, ("ficus", "dense"))):
            view = server.poll(job)
            assert view.state is JobState.DONE, view.error
            assert server.result(job).image.tobytes() == direct_frames[key].tobytes()
        stats = server.stats()
    assert stats.hedged_tiles >= 1
    assert stats.worker_respawns == 0  # slow is not dead
    assert stats.failed == 0


def test_hedge_budget_bounds_duplicates():
    backend = ProcessPoolBackend(num_workers=2, hedge_multiplier=2.0, hedge_budget=1)
    assert backend.hedge_budget == 1
    default = ProcessPoolBackend(num_workers=3, hedge_multiplier=2.0)
    assert default.hedge_budget == 3  # one speculative copy per worker


# ----------------------------------------------------------------------
# Work stealing
# ----------------------------------------------------------------------

def test_work_stealing_migrates_a_hot_key(direct_frames):
    """One hot key saturates its sticky worker while the other sits idle:
    the affinity migrates (bounded by steal_interval_s) and jobs complete
    bit-identically on the new shard's rebuilt bundle."""
    store = make_store()
    backend = ProcessPoolBackend(num_workers=2, steal_interval_s=0.05)
    with RenderServer(store, backend=backend) as server:
        jobs = [server.submit("lego", "dense", tile_size=TILE) for _ in range(3)]
        server.run_until_idle()
        for job in jobs:
            assert server.poll(job).state is JobState.DONE
            assert (
                server.result(job).image.tobytes()
                == direct_frames[("lego", "dense")].tobytes()
            )
        stats = server.stats()
    assert stats.stolen_keys >= 1
    assert stats.failed == 0


def test_stealing_disabled_by_default():
    store = make_store()
    backend = ProcessPoolBackend(num_workers=2)
    with RenderServer(store, backend=backend) as server:
        jobs = [server.submit("lego", "dense", tile_size=TILE) for _ in range(3)]
        server.run_until_idle()
        assert all(server.poll(j).state is JobState.DONE for j in jobs)
        stats = server.stats()
    assert stats.stolen_keys == 0
    assert stats.hedged_tiles == 0
    assert stats.worker_respawns == 0


# ----------------------------------------------------------------------
# Teardown under fire (satellite: close() drains, never hangs, no leaks)
# ----------------------------------------------------------------------

def test_thread_backend_close_with_in_flight_work_leaks_no_threads():
    store = make_store()
    backend = ThreadPoolBackend(num_workers=2)
    backend.start(store)
    for index in range(8):
        backend.submit(TileTask("job-x", index, "lego", "dense", 0, index * 72, (index + 1) * 72))
    start = time.monotonic()
    backend.close()
    assert time.monotonic() - start < 10.0
    assert all(not thread.is_alive() for thread in backend._threads)


def test_process_backend_close_with_dead_worker_does_not_hang():
    """A worker that died with backlog in its queue must not wedge close()
    on the queue's feeder thread."""
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2, fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=1)
    )
    backend.start(store)
    for index in range(6):
        backend.submit(TileTask("job-y", index, "lego", "dense", 0, index * 96, (index + 1) * 96))
    # Give the doomed worker time to pick up its first task and die.
    deadline = time.monotonic() + 30.0
    while backend._processes[0].is_alive() and time.monotonic() < deadline:
        time.sleep(0.01)
    start = time.monotonic()
    backend.close()
    assert time.monotonic() - start < 10.0
    assert all(not process.is_alive() for process in backend._processes)


# ----------------------------------------------------------------------
# Telemetry plumbing (satellite)
# ----------------------------------------------------------------------

ELASTICITY_COUNTERS = ("worker_respawns", "redispatched_tiles", "hedged_tiles", "stolen_keys")


def test_elasticity_counters_zero_on_serial_backend():
    store = make_store()
    with RenderServer(store) as server:
        job = server.submit("lego", "dense", tile_size=TILE)
        server.run_until_idle()
        assert server.poll(job).state is JobState.DONE
        stats = server.stats()
    as_dict = stats.as_dict()
    for counter in ELASTICITY_COUNTERS:
        assert as_dict[counter] == 0, counter
    assert as_dict["backend"] == "serial"


def test_elasticity_counters_flow_through_http_stats():
    import asyncio

    from repro.serve.http import HttpRenderFrontEnd, RenderClient

    store = make_store()
    server = RenderServer(store, default_tile_size=TILE)
    edge = HttpRenderFrontEnd(server)
    host, port = edge.run_in_thread()
    try:
        async def exercise():
            async with RenderClient(host, port, api_key="chaos") as client:
                await client.render(scene="lego", pipeline="dense")
                return await client.stats()

        stats = asyncio.run(exercise())
    finally:
        edge.shutdown()
        server.close()
    for counter in ELASTICITY_COUNTERS:
        assert stats["server"][counter] == 0, counter
    assert stats["server"]["completed"] == 1
