"""Unit tests for image metrics."""

import numpy as np
import pytest

from repro.nerf.metrics import mse, psnr, ssim


def test_mse_zero_for_identical_images():
    img = np.random.default_rng(0).uniform(size=(8, 8, 3))
    assert mse(img, img) == 0.0


def test_mse_known_value():
    a = np.zeros((4, 4))
    b = np.full((4, 4), 0.5)
    assert mse(a, b) == pytest.approx(0.25)


def test_mse_shape_mismatch():
    with pytest.raises(ValueError):
        mse(np.zeros((4, 4)), np.zeros((4, 5)))


def test_psnr_identical_is_infinite():
    img = np.ones((4, 4, 3))
    assert psnr(img, img) == float("inf")


def test_psnr_known_value():
    a = np.zeros((10, 10))
    b = np.full((10, 10), 0.1)
    assert psnr(a, b) == pytest.approx(20.0, abs=1e-6)


def test_psnr_decreases_with_noise():
    rng = np.random.default_rng(0)
    ref = rng.uniform(size=(16, 16, 3))
    small = np.clip(ref + rng.normal(0, 0.01, ref.shape), 0, 1)
    large = np.clip(ref + rng.normal(0, 0.1, ref.shape), 0, 1)
    assert psnr(small, ref) > psnr(large, ref)


def test_ssim_identical_is_one():
    img = np.random.default_rng(1).uniform(size=(16, 16, 3))
    assert ssim(img, img) == pytest.approx(1.0, abs=1e-6)


def test_ssim_penalises_noise():
    rng = np.random.default_rng(2)
    ref = rng.uniform(size=(32, 32))
    noisy = np.clip(ref + rng.normal(0, 0.2, ref.shape), 0, 1)
    assert ssim(noisy, ref) < 0.95


def test_ssim_shape_mismatch():
    with pytest.raises(ValueError):
        ssim(np.zeros((8, 8)), np.zeros((9, 8)))
