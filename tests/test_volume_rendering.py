"""Unit tests for volume rendering (alpha compositing)."""

import numpy as np
import pytest

from repro.nerf.volume_rendering import (
    composite_rays,
    compute_weights,
    density_to_alpha,
    softplus,
)


class TestSoftplus:
    def test_positive_everywhere(self):
        x = np.linspace(-10, 10, 50)
        assert np.all(softplus(x) > 0)

    def test_linear_for_large_inputs(self):
        assert softplus(np.array([50.0]))[0] == pytest.approx(50.0)

    def test_monotone(self):
        x = np.linspace(-5, 5, 100)
        assert np.all(np.diff(softplus(x)) > 0)


class TestAlpha:
    def test_zero_density_gives_zero_alpha(self):
        alpha = density_to_alpha(np.array([-50.0]), np.array([0.1]))
        assert alpha[0] == pytest.approx(0.0, abs=1e-3)

    def test_alpha_in_unit_interval(self):
        rng = np.random.default_rng(0)
        alpha = density_to_alpha(rng.normal(0, 10, 100), np.full(100, 0.05))
        assert np.all(alpha >= 0.0)
        assert np.all(alpha < 1.0)

    def test_alpha_increases_with_delta(self):
        a1 = density_to_alpha(np.array([5.0]), np.array([0.01]))
        a2 = density_to_alpha(np.array([5.0]), np.array([0.1]))
        assert a2 > a1


class TestWeights:
    def test_weights_sum_at_most_one(self):
        rng = np.random.default_rng(1)
        alphas = rng.uniform(0, 1, size=(10, 20))
        weights = compute_weights(alphas)
        assert np.all(weights.sum(axis=-1) <= 1.0 + 1e-9)

    def test_opaque_first_sample_takes_all(self):
        alphas = np.array([[1.0, 0.5, 0.5]])
        weights = compute_weights(alphas)
        assert weights[0, 0] == pytest.approx(1.0)
        assert np.allclose(weights[0, 1:], 0.0, atol=1e-9)

    def test_transparent_ray_has_zero_weight(self):
        weights = compute_weights(np.zeros((1, 8)))
        assert np.allclose(weights, 0.0)


class TestComposite:
    def test_background_fills_transparent_rays(self):
        density = np.full((2, 4), -100.0)
        rgb = np.zeros((2, 4, 3))
        t = np.tile(np.linspace(0, 1, 4), (2, 1))
        pixels, _, acc = composite_rays(density, rgb, t, background=np.array([1.0, 1.0, 1.0]))
        assert np.allclose(pixels, 1.0, atol=1e-3)
        assert np.allclose(acc, 0.0, atol=1e-3)

    def test_opaque_surface_returns_surface_color(self):
        density = np.concatenate([np.full((1, 2), -100.0), np.full((1, 6), 100.0)], axis=1)
        rgb = np.zeros((1, 8, 3))
        rgb[:, 2:, 0] = 1.0  # red surface
        t = np.linspace(0, 1, 8)[None, :]
        pixels, _, acc = composite_rays(density, rgb, t, background=np.array([0.0, 1.0, 0.0]))
        assert pixels[0, 0] == pytest.approx(1.0, abs=1e-2)
        assert pixels[0, 1] == pytest.approx(0.0, abs=1e-2)
        assert acc[0] == pytest.approx(1.0, abs=1e-3)

    def test_pixel_values_are_convex_combination(self):
        rng = np.random.default_rng(2)
        density = rng.normal(0, 3, size=(5, 16))
        rgb = rng.uniform(0, 1, size=(5, 16, 3))
        t = np.tile(np.linspace(0.1, 2.0, 16), (5, 1))
        pixels, weights, acc = composite_rays(density, rgb, t)
        assert np.all(pixels >= -1e-9)
        assert np.all(pixels <= 1.0 + 1e-9)
        assert np.allclose(weights.sum(axis=-1), acc)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            composite_rays(np.zeros((2, 4)), np.zeros((2, 4, 3)), np.zeros((2, 5)))
        with pytest.raises(ValueError):
            composite_rays(np.zeros((2, 4)), np.zeros((2, 3, 3)), np.zeros((2, 4)))
