"""Tests for the procedural Synthetic-NeRF-analog dataset."""

import numpy as np
import pytest

from repro.datasets.cameras import camera_rig, synthetic_nerf_camera
from repro.datasets.scenes import SCENE_NAMES, build_scene_grid, scene_spec
from repro.datasets.synthetic import load_all_scenes, load_scene


class TestSceneSpecs:
    def test_all_eight_scenes_present(self):
        assert len(SCENE_NAMES) == 8
        assert set(SCENE_NAMES) == {
            "chair", "drums", "ficus", "hotdog", "lego", "materials", "mic", "ship",
        }

    def test_targets_follow_paper_range(self):
        # Fig. 2(b): non-zero fraction between 2.01 % and 6.48 %.
        for name in SCENE_NAMES:
            spec = scene_spec(name)
            assert 0.02 <= spec.target_occupancy <= 0.065

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            scene_spec("bulldozer")


class TestSceneGrids:
    @pytest.mark.parametrize("name", ["lego", "ficus", "ship"])
    def test_grid_occupancy_is_sparse(self, name):
        grid = build_scene_grid(name, resolution=48)
        occupancy = grid.occupancy_fraction()
        assert 0.005 < occupancy < 0.20

    def test_occupancy_approaches_target_at_higher_resolution(self):
        grid = build_scene_grid("hotdog", resolution=64)
        target = scene_spec("hotdog").target_occupancy
        assert grid.occupancy_fraction() <= target * 1.3

    def test_features_store_logit_albedo(self):
        grid = build_scene_grid("chair", resolution=32)
        occupied = grid.occupancy_mask()
        features = grid.features[occupied]
        albedo = 1.0 / (1.0 + np.exp(-features[:, :3]))
        assert np.all(albedo > 0.0)
        assert np.all(albedo < 1.0)

    def test_density_constant_inside_object(self):
        grid = build_scene_grid("mic", resolution=32)
        occupied = grid.occupancy_mask()
        assert np.all(grid.density[occupied] > 0.0)
        assert np.all(grid.density[~occupied] == 0.0)

    def test_deterministic_given_seed(self):
        a = build_scene_grid("drums", resolution=24, seed=3)
        b = build_scene_grid("drums", resolution=24, seed=3)
        assert np.array_equal(a.density, b.density)
        assert np.array_equal(a.features, b.features)

    def test_different_scenes_differ(self):
        a = build_scene_grid("lego", resolution=24)
        b = build_scene_grid("ship", resolution=24)
        assert not np.array_equal(a.density, b.density)


class TestCameras:
    def test_full_resolution_matches_synthetic_nerf(self):
        camera = synthetic_nerf_camera(azimuth_deg=30.0)
        assert camera.width == 800
        assert camera.height == 800
        assert camera.focal == pytest.approx(1111.111)

    def test_scaled_resolution_preserves_fov(self):
        full = synthetic_nerf_camera(0.0)
        small = synthetic_nerf_camera(0.0, width=100, height=100)
        assert small.focal / small.width == pytest.approx(full.focal / full.width)

    def test_rig_spacing(self):
        rig = camera_rig(num_views=8, width=64, height=64)
        assert len(rig) == 8
        positions = np.array([c.position for c in rig])
        radii = np.linalg.norm(positions, axis=1)
        assert np.allclose(radii, radii[0])

    def test_rig_rejects_zero_views(self):
        with pytest.raises(ValueError):
            camera_rig(num_views=0)


class TestSyntheticScene:
    def test_load_scene_bundles_everything(self, small_scene):
        assert small_scene.name == "lego"
        assert len(small_scene.cameras) == 2
        assert small_scene.mlp.spec.input_dim == 39

    def test_sparse_grid_cached(self, small_scene):
        assert small_scene.sparse_grid is small_scene.sparse_grid

    def test_reference_image_cached(self, small_scene):
        first = small_scene.reference_image(0)
        second = small_scene.reference_image(0)
        assert first is second

    def test_workload_summary_consistent(self, small_scene):
        summary = small_scene.workload_summary()
        assert summary["num_nonzero"] == small_scene.sparse_grid.num_points
        assert summary["occupancy"] == pytest.approx(small_scene.occupancy_fraction())

    def test_load_all_scenes_names(self):
        scenes = load_all_scenes(resolution=16, image_size=20, num_views=1, num_samples=8)
        assert [s.name for s in scenes] == list(SCENE_NAMES)

    def test_invalid_scene_name(self):
        with pytest.raises(KeyError):
            load_scene("castle", resolution=16)
