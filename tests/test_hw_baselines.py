"""Tests for the GPU baseline models and published accelerator specs."""

import pytest

from repro.hardware.baselines import (
    NEUREX_EDGE,
    RT_NERF_EDGE,
    GPUPlatformModel,
)


class TestGPUModel:
    def test_edge_platforms_memory_bound(self, paper_workload):
        # Fig. 2(a): edge GPUs spend most of their time on memory access.
        for name in ("xnx", "onx"):
            breakdown = GPUPlatformModel.by_name(name).frame_breakdown(paper_workload)
            assert breakdown.memory_fraction > 0.6

    def test_a100_not_memory_bound(self, paper_workload):
        breakdown = GPUPlatformModel.by_name("a100").frame_breakdown(paper_workload)
        assert breakdown.memory_fraction < 0.5

    def test_edge_memory_fraction_much_higher_than_a100(self, paper_workload):
        # Paper: 4.79x - 5.14x higher memory-time share on edge devices.
        a100 = GPUPlatformModel.by_name("a100").frame_breakdown(paper_workload)
        xnx = GPUPlatformModel.by_name("xnx").frame_breakdown(paper_workload)
        assert xnx.memory_fraction / a100.memory_fraction > 2.0

    def test_edge_gpus_far_from_realtime(self, paper_workload):
        assert GPUPlatformModel.by_name("xnx").fps(paper_workload) < 5.0
        assert GPUPlatformModel.by_name("onx").fps(paper_workload) < 10.0

    def test_onx_faster_than_xnx(self, paper_workload):
        assert GPUPlatformModel.by_name("onx").fps(paper_workload) > GPUPlatformModel.by_name(
            "xnx"
        ).fps(paper_workload)

    def test_a100_fastest(self, paper_workload):
        fps = {
            name: GPUPlatformModel.by_name(name).fps(paper_workload)
            for name in ("a100", "onx", "xnx")
        }
        assert fps["a100"] > fps["onx"] > fps["xnx"]

    def test_time_distribution_normalised(self, paper_workload):
        dist = GPUPlatformModel.by_name("onx").frame_breakdown(paper_workload).time_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_energy_uses_board_power(self, paper_workload):
        model = GPUPlatformModel.by_name("xnx")
        breakdown = model.frame_breakdown(paper_workload)
        assert model.energy_per_frame_j(paper_workload) == pytest.approx(
            20.0 * breakdown.frame_time_s
        )

    def test_fps_per_watt(self, paper_workload):
        model = GPUPlatformModel.by_name("onx")
        assert model.fps_per_watt(paper_workload) == pytest.approx(
            model.fps(paper_workload) / 25.0
        )


class TestPublishedAccelerators:
    def test_rt_nerf_row_matches_paper(self):
        assert RT_NERF_EDGE.sram_mbytes == pytest.approx(3.5)
        assert RT_NERF_EDGE.area_mm2 == pytest.approx(18.85)
        assert RT_NERF_EDGE.power_w == pytest.approx(8.0)
        assert RT_NERF_EDGE.fps == pytest.approx(45.0)
        assert RT_NERF_EDGE.fps_per_watt == pytest.approx(5.625, rel=1e-3)

    def test_neurex_row_matches_paper(self):
        assert NEUREX_EDGE.sram_mbytes == pytest.approx(0.86)
        assert NEUREX_EDGE.area_mm2 == pytest.approx(1.31)
        assert NEUREX_EDGE.power_w == pytest.approx(1.31)
        assert NEUREX_EDGE.fps == pytest.approx(6.57)

    def test_area_efficiency_derived(self):
        assert RT_NERF_EDGE.fps_per_mm2 == pytest.approx(45.0 / 18.85)
        assert NEUREX_EDGE.fps_per_mm2 == pytest.approx(6.57 / 1.31)
