"""Tests for SpNeRFConfig."""

import pytest

from repro.core.config import SpNeRFConfig


def test_paper_defaults():
    cfg = SpNeRFConfig()
    assert cfg.num_subgrids == 64
    assert cfg.hash_table_size == 32768
    assert cfg.codebook_size == 4096
    assert cfg.address_bits == 18
    assert cfg.use_bitmap_masking is True


def test_address_capacity():
    cfg = SpNeRFConfig()
    assert cfg.address_capacity == 2 ** 18
    assert cfg.true_grid_capacity == 2 ** 18 - 4096


def test_total_hash_entries():
    cfg = SpNeRFConfig(num_subgrids=16, hash_table_size=2048)
    assert cfg.total_hash_entries == 16 * 2048


def test_with_updates_returns_new_config():
    cfg = SpNeRFConfig()
    swept = cfg.with_updates(hash_table_size=1024)
    assert swept.hash_table_size == 1024
    assert cfg.hash_table_size == 32768
    assert swept.num_subgrids == cfg.num_subgrids


def test_validation():
    with pytest.raises(ValueError):
        SpNeRFConfig(num_subgrids=0)
    with pytest.raises(ValueError):
        SpNeRFConfig(hash_table_size=0)
    with pytest.raises(ValueError):
        SpNeRFConfig(codebook_size=0)
    with pytest.raises(ValueError):
        SpNeRFConfig(address_bits=40)
    with pytest.raises(ValueError):
        SpNeRFConfig(codebook_size=2 ** 18, address_bits=18)
