"""Tests for the VQRF baseline: importance, pruning, VQ and the model."""

import numpy as np
import pytest

from repro.vqrf.importance import importance_from_density, importance_from_rays
from repro.vqrf.model import VQRFField
from repro.vqrf.pruning import prune_by_importance
from repro.vqrf.vector_quantization import build_codebook


class TestImportance:
    def test_density_heuristic_nonnegative(self, small_sparse_grid):
        scores = importance_from_density(small_sparse_grid)
        assert scores.shape == (small_sparse_grid.num_points,)
        assert np.all(scores >= 0.0)

    def test_score_increases_with_density_and_features(self):
        from repro.grid.voxel_grid import GridSpec, SparseVoxelGrid

        spec = GridSpec(resolution=8, feature_dim=4)
        positions = np.array([[1, 1, 1], [2, 2, 2], [3, 3, 3]])
        density = np.array([1.0, 10.0, 100.0], dtype=np.float32)
        features = np.tile(np.ones(4, dtype=np.float32), (3, 1)) * np.array([[1], [1], [1]])
        sparse = SparseVoxelGrid(spec=spec, positions=positions, density=density, features=features)
        scores = importance_from_density(sparse)
        assert scores[0] < scores[1] < scores[2]

    def test_ray_importance_concentrates_on_occupied(self, small_scene):
        importance = importance_from_rays(
            small_scene.grid, small_scene.cameras[:1], num_samples=24, max_rays_per_camera=256
        )
        occupied = small_scene.grid.occupancy_mask()
        assert importance.shape == occupied.shape
        assert importance[occupied].sum() > 0.0
        # Visible occupied vertices must receive (much) more importance mass
        # than empty space.
        assert importance[occupied].mean() > importance[~occupied].mean()


class TestPruning:
    def test_three_way_split_partitions(self, small_sparse_grid):
        importance = importance_from_density(small_sparse_grid)
        result = prune_by_importance(small_sparse_grid, importance, 0.1, 0.2)
        n = small_sparse_grid.num_points
        assert result.num_pruned + result.num_quantized + result.num_kept == n
        all_idx = np.concatenate(
            [result.pruned_indices, result.quantized_indices, result.kept_indices]
        )
        assert len(np.unique(all_idx)) == n

    def test_kept_voxels_are_most_important(self, small_sparse_grid):
        importance = importance_from_density(small_sparse_grid)
        result = prune_by_importance(small_sparse_grid, importance, 0.1, 0.2)
        if result.num_pruned and result.num_kept:
            assert importance[result.kept_indices].min() >= importance[result.pruned_indices].max()

    def test_fraction_validation(self, small_sparse_grid):
        importance = importance_from_density(small_sparse_grid)
        with pytest.raises(ValueError):
            prune_by_importance(small_sparse_grid, importance, prune_fraction=0.8, keep_fraction=0.5)
        with pytest.raises(ValueError):
            prune_by_importance(small_sparse_grid, importance, prune_fraction=-0.1)
        with pytest.raises(ValueError):
            prune_by_importance(small_sparse_grid, importance[:-1])


class TestVectorQuantization:
    def test_codebook_shape_and_padding(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(200, 12))
        quantizer = build_codebook(vectors, num_entries=64, num_iterations=3)
        assert quantizer.codebook.shape == (64, 12)

    def test_padding_when_few_vectors(self):
        vectors = np.random.default_rng(1).normal(size=(10, 4))
        quantizer = build_codebook(vectors, num_entries=32, num_iterations=2)
        assert quantizer.num_entries == 32

    def test_encode_decode_reduces_error_vs_random(self):
        rng = np.random.default_rng(2)
        centers = rng.normal(0, 5, size=(8, 6))
        vectors = np.repeat(centers, 50, axis=0) + rng.normal(0, 0.05, size=(400, 6))
        quantizer = build_codebook(vectors, num_entries=8, num_iterations=10)
        assert quantizer.quantization_error(vectors) < 0.1

    def test_encode_indices_in_range(self, small_sparse_grid):
        quantizer = build_codebook(small_sparse_grid.features, num_entries=32, num_iterations=2)
        indices = quantizer.encode(small_sparse_grid.features)
        assert indices.min() >= 0
        assert indices.max() < 32

    def test_decode_out_of_range_rejected(self):
        quantizer = build_codebook(np.random.default_rng(3).normal(size=(50, 4)), 16, 2)
        with pytest.raises(IndexError):
            quantizer.decode(np.array([99]))

    def test_empty_input_encode(self):
        quantizer = build_codebook(np.random.default_rng(4).normal(size=(50, 4)), 16, 2)
        assert quantizer.encode(np.zeros((0, 4))).shape == (0,)

    def test_memory_bytes(self):
        quantizer = build_codebook(np.random.default_rng(5).normal(size=(50, 12)), 64, 1)
        assert quantizer.memory_bytes(2) == 64 * 12 * 2


class TestVQRFModel:
    def test_compression_preserves_survivor_count(self, small_sparse_grid, vqrf_model):
        n = small_sparse_grid.num_points
        assert vqrf_model.num_voxels <= n
        assert vqrf_model.num_voxels >= int(0.9 * n)  # only 5 % pruned by default

    def test_true_and_quantized_partition(self, vqrf_model):
        assert vqrf_model.num_true_voxels + vqrf_model.num_quantized_voxels == vqrf_model.num_voxels

    def test_restore_shape(self, small_scene, vqrf_model):
        restored = vqrf_model.restore()
        assert restored.spec.resolution == small_scene.grid.spec.resolution
        assert restored.occupancy_fraction() <= small_scene.occupancy_fraction()

    def test_true_voxels_restored_accurately(self, small_scene, vqrf_model):
        # Kept (true) voxels only pass through INT8 quantization, so their
        # features must be close to the originals.
        restored = vqrf_model.restore()
        positions = vqrf_model.positions[vqrf_model.is_true_voxel]
        original = small_scene.grid.features[positions[:, 0], positions[:, 1], positions[:, 2]]
        recovered = restored.features[positions[:, 0], positions[:, 1], positions[:, 2]]
        scale = vqrf_model.true_features.scale
        assert np.max(np.abs(original - recovered)) <= scale * 0.51 + 1e-6

    def test_compressed_much_smaller_than_restored(self, vqrf_model):
        compressed = vqrf_model.compressed_size_bytes()["total"]
        assert compressed < 0.25 * vqrf_model.restored_size_bytes()

    def test_field_renders_close_to_reference(self, small_scene, vqrf_model):
        from repro.nerf.metrics import psnr
        from repro.nerf.renderer import VolumetricRenderer

        field = VQRFField(vqrf_model, small_scene.mlp)
        renderer = VolumetricRenderer(field, small_scene.render_config)
        image = renderer.render_image(
            small_scene.cameras[0], small_scene.bbox_min, small_scene.bbox_max
        )
        reference = small_scene.reference_image(0)
        assert psnr(image, reference) > 25.0
