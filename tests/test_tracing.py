"""Tests for the observability layer: metrics, tracing, and their surfaces.

Covers this PR's tentpole and satellites:

* **streaming histograms** — percentiles exact at test-sized counts (the
  reservoir holds every sample), bounded memory at any count, sane
  bucket-interpolated estimates beyond the reservoir, and well-formed
  Prometheus text exposition (cumulative ``le`` buckets ending ``+Inf``);
* **trace recorder** — deterministic spans/events under an injected clock,
  a bounded finished-trace ring, supervisor routing, and the Chrome
  trace-event export's structure;
* **server integration** — every completed job is reconstructable as a
  trace whose typed stage spans account for its measured latency within
  tolerance, under the serial *and* process backends; elasticity events
  (hedged / redispatched / respawn / expired) land in traces; frames stay
  bit-identical with tracing enabled;
* **telemetry** — bounded memory under sustained traffic (regression for
  the old unbounded lists), p99 + per-stage breakdown in the snapshot, and
  the busy-time vs wall-clock throughput distinction;
* **HTTP surfaces** — ``/v1/stats`` parses under a strict NaN-rejecting
  parser *before the first completion* (percentiles undefined), ``/v1/trace``
  and ``/v1/traces/export`` serve the recorded spans, and ``/v1/metrics``
  is coherent Prometheus text.

Scenes are the same tiny 16^3/24px ones as the other serve test modules.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math

import numpy as np
import pytest

from repro.api import PipelineConfig, SpNeRFConfig
from repro.serve import (
    EVENT_NAMES,
    PROMETHEUS_CONTENT_TYPE,
    SPAN_NAMES,
    STAGE_NAMES,
    FaultPlan,
    JobState,
    ProcessPoolBackend,
    RenderServer,
    SceneStore,
    StreamingHistogram,
    Telemetry,
    TraceRecorder,
    render_prometheus,
)
from repro.serve.http import HttpRenderFrontEnd, RenderClient
from repro.serve.http.wire import json_body, sse_event_bytes
from repro.serve.metrics import (
    prometheus_counter,
    prometheus_gauge,
    prometheus_histogram,
)

SERVE_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=4, hash_table_size=256, codebook_size=16),
    kmeans_iterations=2,
)
SCENE_KWARGS = {"resolution": 16, "image_size": 24, "num_views": 1, "num_samples": 16}

#: 576px frames shard into 8 tiles at this size — enough spans per job.
TILE = 77


def make_store(**kwargs) -> SceneStore:
    kwargs.setdefault("config", SERVE_CONFIG)
    kwargs.setdefault("scene_kwargs", dict(SCENE_KWARGS))
    return SceneStore(**kwargs)


@pytest.fixture(scope="module")
def warm_store() -> SceneStore:
    return make_store()


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def strict_loads(raw: bytes):
    """JSON parse that rejects the bare NaN/Infinity tokens Python emits."""

    def reject(token):
        raise ValueError(f"non-JSON constant: {token}")

    return json.loads(raw.decode("utf-8"), parse_constant=reject)


# ----------------------------------------------------------------------
# StreamingHistogram
# ----------------------------------------------------------------------

def test_histogram_percentiles_exact_at_small_counts():
    """While the reservoir holds every sample, percentiles equal the exact
    numpy estimator the old unbounded lists used."""
    values = [0.01, 0.02, 0.05, 0.1, 0.5, 1.0, 2.0]
    hist = StreamingHistogram()
    for value in values:
        hist.observe(value)
    for q in (50, 95, 99):
        assert hist.percentile(q) == pytest.approx(float(np.percentile(values, q)))
    assert hist.mean == pytest.approx(float(np.mean(values)))


def test_histogram_memory_bounded_at_any_count():
    hist = StreamingHistogram(reservoir_size=64)
    baseline = None
    rng = np.random.default_rng(7)
    for block in range(20):
        for value in rng.uniform(1e-4, 10.0, size=500):
            hist.observe(float(value))
        if baseline is None:
            baseline = hist.memory_slots()
        assert hist.memory_slots() == baseline  # constant after the fill
    assert hist.count == 10_000
    assert hist.memory_slots() <= 64 + len(hist.counts)


def test_histogram_bucket_percentiles_bounded_by_observations():
    """Beyond the reservoir the estimate is interpolated but stays inside
    [min, max] and within one bucket ratio of the truth."""
    hist = StreamingHistogram(reservoir_size=8)
    rng = np.random.default_rng(0)
    values = rng.lognormal(mean=-3.0, sigma=1.0, size=4000)
    for value in values:
        hist.observe(float(value))
    for q in (50, 95, 99):
        estimate = hist.percentile(q)
        truth = float(np.percentile(values, q))
        assert hist.min <= estimate <= hist.max
        assert truth / 1.3 <= estimate <= truth * 1.3  # ~one bucket of error


def test_histogram_ignores_nan_and_clamps_negative():
    hist = StreamingHistogram()
    hist.observe(float("nan"))
    assert hist.count == 0
    hist.observe(-1.0)  # clock skew artifacts must not corrupt the sum
    assert hist.count == 1 and hist.sum == 0.0
    assert math.isnan(StreamingHistogram().percentile(50))


def test_histogram_rejects_bad_parameters():
    with pytest.raises(ValueError):
        StreamingHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        StreamingHistogram(min_value=1.0, max_value=0.5)
    with pytest.raises(ValueError):
        StreamingHistogram(buckets_per_decade=0)
    with pytest.raises(ValueError):
        StreamingHistogram(reservoir_size=1)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_prometheus_histogram_family_is_cumulative_and_complete():
    hist = StreamingHistogram()
    for value in (0.001, 0.01, 0.01, 5.0, 5000.0):  # last one overflows
        hist.observe(value)
    lines = prometheus_histogram("x_seconds", "help", hist)
    assert lines[0] == "# HELP x_seconds help"
    assert lines[1] == "# TYPE x_seconds histogram"
    buckets = [line for line in lines if line.startswith("x_seconds_bucket")]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)  # cumulative
    assert buckets[-1].startswith('x_seconds_bucket{le="+Inf"}')
    assert counts[-1] == 5
    assert any(line == "x_seconds_count 5" for line in lines)
    (sum_line,) = [line for line in lines if line.startswith("x_seconds_sum")]
    assert float(sum_line.split(" ")[1]) == pytest.approx(hist.sum)


def test_prometheus_page_grammar_and_escaping():
    page = render_prometheus([
        prometheus_counter("jobs_total", "Jobs with a \\ and\nnewline.", 3),
        prometheus_gauge("depth", "Queue depth.", [(None, 2.0)]),
        prometheus_gauge(
            "util", "Per-worker.", [({"worker": 'a"b'}, 0.5), ({"worker": "1"}, 1.0)]
        ),
    ])
    assert page.endswith("\n")
    assert "\\n" in page and "\n\n" not in page  # escaped, no blank lines
    assert 'util{worker="a\\"b"} 0.5' in page
    for line in page.rstrip("\n").splitlines():
        assert line.startswith("# ") or len(line.split(" ")) == 2


# ----------------------------------------------------------------------
# TraceRecorder (unit, injected clock)
# ----------------------------------------------------------------------

def test_recorder_spans_and_events_deterministic():
    clock = FakeClock()
    recorder = TraceRecorder(capacity=4, clock=clock)
    recorder.start("job-1", scene="lego", pipeline="dense")
    recorder.begin_span("job-1", "queue")
    clock.advance(1.0)
    recorder.end_span("job-1", "queue")
    recorder.add_span("job-1", "render-tile", start_s=1.0, end_s=1.5, worker=2, tile=0)
    recorder.add_event("job-1", "hedged", tile=0, worker=2)
    clock.advance(0.5)
    recorder.finish("job-1", "done")

    trace = recorder.get("job-1")
    assert trace.state == "done" and trace.finished_s == 1.5
    assert trace.stage_totals() == {"queue": 1.0, "render-tile": 0.5}
    assert [span.name for span in trace.spans] == ["queue", "render-tile"]
    assert trace.spans[1].attrs == {"worker": 2, "tile": 0}
    (event,) = trace.events
    assert event.name == "hedged" and event.ts_s == 1.0
    doc = trace.as_dict()
    assert doc["stage_totals_s"]["queue"] == 1.0
    assert doc["spans"][0]["duration_s"] == 1.0


def test_recorder_ring_is_bounded_and_indexed():
    recorder = TraceRecorder(capacity=3, clock=FakeClock())
    for index in range(10):
        job = f"job-{index}"
        recorder.start(job)
        recorder.finish(job, "done")
    assert len(recorder) == 3
    assert recorder.get("job-0") is None  # evicted from ring *and* index
    assert [t.job_id for t in recorder.traces()] == ["job-7", "job-8", "job-9"]


def test_recorder_capacity_zero_disables_recording():
    recorder = TraceRecorder(capacity=0)
    recorder.start("job-1")
    recorder.begin_span("job-1", "queue")
    recorder.add_event("job-1", "hedged")
    recorder.finish("job-1", "done")
    assert not recorder.enabled
    assert len(recorder) == 0 and recorder.get("job-1") is None
    assert len(recorder.supervisor_events) == 0
    with pytest.raises(ValueError):
        TraceRecorder(capacity=-1)


def test_recorder_event_routing():
    clock = FakeClock()
    recorder = TraceRecorder(capacity=2, clock=clock)
    recorder.add_event(None, "respawn", worker=1)  # pool-scoped
    recorder.add_event("never-seen", "stolen", scene="lego")  # unknown job
    assert [e.name for e in recorder.supervisor_events] == ["respawn", "stolen"]
    assert recorder.supervisor_events[1].attrs["job_id"] == "never-seen"
    recorder.start("job-1")
    recorder.add_event("job-1", "redispatched", tile=3)
    assert recorder.get("job-1").events[0].name == "redispatched"


def test_recorder_finish_closes_open_spans_except_deliver():
    clock = FakeClock()
    recorder = TraceRecorder(capacity=2, clock=clock)
    recorder.start("job-1")
    recorder.begin_span("job-1", "queue")
    clock.advance(1.0)
    recorder.begin_span("job-1", "deliver")
    recorder.finish("job-1", "done")
    trace = recorder.get("job-1")
    queue, deliver = trace.spans
    assert queue.end_s == 1.0  # force-closed at finish
    assert deliver.end_s is None  # legitimately outlives the terminal state
    clock.advance(2.0)
    recorder.end_span("job-1", "deliver")  # late close finds finished traces
    assert deliver.end_s == 3.0 and deliver.duration_s == 2.0


def test_recorder_chrome_export_structure():
    clock = FakeClock()
    clock.now = 100.0  # non-zero epoch: export must rebase to t=0
    recorder = TraceRecorder(capacity=4, clock=clock)
    recorder.start("job-1", scene="lego", pipeline="dense")
    recorder.add_span("job-1", "render-tile", start_s=100.5, end_s=101.0, tile=0)
    recorder.add_event("job-1", "hedged", tile=0)
    recorder.finish("job-1", "done")
    recorder.add_event(None, "respawn", worker=0)
    doc = recorder.export_chrome()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metadata} >= {"render-server", "supervisor"}
    (span,) = [e for e in events if e["ph"] == "X"]
    assert span["name"] == "render-tile" and span["args"]["job_id"] == "job-1"
    assert span["ts"] == pytest.approx(0.5e6) and span["dur"] == pytest.approx(0.5e6)
    instants = {e["name"]: e for e in events if e["ph"] == "i"}
    assert instants["hedged"]["s"] == "t" and instants["respawn"]["s"] == "p"
    assert instants["respawn"]["tid"] == 0  # supervisor lane
    json.dumps(doc, allow_nan=False)  # strictly serializable


# ----------------------------------------------------------------------
# Telemetry: bounded memory, p99, stage breakdown, wall throughput
# ----------------------------------------------------------------------

def test_telemetry_memory_bounded_under_sustained_traffic():
    """Regression for the old unbounded ``latencies_s``/``queue_waits_s``
    lists: 20k completions may not grow the telemetry's retained state."""
    telemetry = Telemetry()
    assert not hasattr(telemetry, "latencies_s")
    assert not hasattr(telemetry, "queue_waits_s")
    baseline = None
    for index in range(20_000):
        telemetry.record_completion(0.01 + (index % 7) * 0.003, 0.001, reassemble_s=1e-4)
        telemetry.record_delivery(5e-4)
        if index == 999:
            baseline = sum(h.memory_slots() for h in telemetry.stages.values())
    assert sum(h.memory_slots() for h in telemetry.stages.values()) == baseline
    stats = telemetry.snapshot(queue_depth=0)
    assert stats.completed == 20_000
    assert stats.latency_p99_s >= stats.latency_p95_s >= stats.latency_p50_s > 0


def test_telemetry_stage_breakdown_and_throughputs():
    telemetry = Telemetry()
    from repro.nerf.renderer import RenderStats

    stats = RenderStats()
    stats.num_rays = 1000
    telemetry.record_build(2.0, worker_id=0)
    telemetry.record_tile(stats, service_s=2.0, worker_id=0)
    telemetry.record_completion(4.5, 0.25, reassemble_s=0.25)
    snapshot = telemetry.snapshot(queue_depth=0, wall_s=10.0, num_workers=1)
    # Busy-time normalization: 1000 rays / (2s render + 2s build).
    assert snapshot.throughput_rays_per_s == pytest.approx(250.0)
    # Wall normalization: the capacity figure, over elapsed time.
    assert snapshot.throughput_rays_per_s_wall == pytest.approx(100.0)
    assert set(snapshot.stage_breakdown) == set(STAGE_NAMES)
    assert snapshot.stage_breakdown["render"]["count"] == 1
    assert snapshot.stage_breakdown["build"]["total_s"] == pytest.approx(2.0)
    assert snapshot.stage_breakdown["deliver"]["count"] == 0
    assert snapshot.as_dict()["stage_breakdown"]["latency"]["p99_s"] == pytest.approx(4.5)


def test_telemetry_wall_throughput_zero_without_wall():
    telemetry = Telemetry()
    assert telemetry.snapshot(queue_depth=0).throughput_rays_per_s_wall == 0.0


# ----------------------------------------------------------------------
# Server integration: traces account for latency (serial backend)
# ----------------------------------------------------------------------

def stage_accounting(trace_doc_or_trace, latency_s: float):
    """Assert the non-deliver stage spans account for the job's latency."""
    if hasattr(trace_doc_or_trace, "stage_totals"):
        totals = trace_doc_or_trace.stage_totals()
    else:
        totals = trace_doc_or_trace["stage_totals_s"]
    accounted = sum(v for stage, v in totals.items() if stage != "deliver")
    tolerance = max(0.5 * latency_s, 0.05)
    assert abs(accounted - latency_s) <= tolerance, (
        f"stage spans account for {accounted:.4f}s of a {latency_s:.4f}s job"
    )
    return totals


def test_serial_job_trace_accounts_for_latency(warm_store):
    server = RenderServer(warm_store)
    job = server.submit("lego", "dense", tile_size=TILE)
    server.run_until_idle()
    result = server.result(job)

    trace = server.tracer.get(job)
    assert trace is not None and trace.state == "done"
    names = {span.name for span in trace.spans}
    assert {"queue", "render-tile", "reassemble", "deliver"} <= names
    assert names <= set(SPAN_NAMES)
    assert all(span.end_s is not None for span in trace.spans)  # deliver closed
    assert sum(1 for s in trace.spans if s.name == "render-tile") == 8  # 576/77
    for span in trace.spans:
        if span.name == "render-tile":
            assert span.attrs["worker"] == 0 and isinstance(span.attrs["tile"], int)
    totals = stage_accounting(trace, result.latency_s)
    assert totals["queue"] >= 0.0 and totals["render-tile"] > 0.0
    server.close()


def test_serial_trace_spans_nest_within_job_window(warm_store):
    server = RenderServer(warm_store)
    job = server.submit("ficus", "dense", tile_size=TILE)
    server.run_until_idle()
    server.result(job)
    trace = server.tracer.get(job)
    for span in trace.spans:
        assert span.start_s >= trace.origin_s - 1e-9
        if span.name != "deliver":
            assert span.end_s <= trace.finished_s + 1e-9
    server.close()


def test_frames_bit_identical_with_tracing_on_and_off(warm_store):
    with RenderServer(warm_store) as traced, RenderServer(
        warm_store, trace_capacity=0
    ) as untraced:
        frames = {}
        for name, server in (("on", traced), ("off", untraced)):
            job = server.submit("lego", "spnerf", tile_size=TILE)
            server.run_until_idle()
            frames[name] = server.result(job).image
        assert len(traced.tracer) == 1 and len(untraced.tracer) == 0
    assert frames["on"].tobytes() == frames["off"].tobytes()


def test_expired_job_trace_records_the_event(warm_store):
    clock = FakeClock()
    server = RenderServer(warm_store, clock=clock)
    job = server.submit("lego", "dense", deadline_s=0.5, tile_size=64)
    server.step()
    clock.advance(1.0)
    server.run_until_idle()
    assert server.poll(job).state is JobState.EXPIRED
    trace = server.tracer.get(job)
    assert trace.state == "expired"
    assert [e.name for e in trace.events] == ["expired"]
    assert trace.events[0].attrs["deadline_s"] == 0.5
    assert all(e.name in EVENT_NAMES for e in trace.events)
    server.close()


def test_server_metrics_text_exposes_counters_and_stages(warm_store):
    server = RenderServer(warm_store)
    job = server.submit("lego", "dense", tile_size=TILE)
    server.run_until_idle()
    server.result(job)
    text = server.metrics_text()
    assert text.endswith("\n")
    assert "repro_serve_jobs_completed_total 1" in text
    assert "repro_serve_tiles_rendered_total 8" in text
    for stage in ("queue_wait", "render", "latency"):
        assert f"# TYPE repro_serve_{stage}_seconds histogram" in text
    # Cumulative invariant on one family: counts never decrease, end at +Inf.
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_serve_latency_seconds_bucket")
    ]
    assert buckets and buckets == sorted(buckets) and buckets[-1] == 1
    assert 'repro_serve_worker_utilization{worker="0"}' in text
    server.close()


# ----------------------------------------------------------------------
# Process backend: cross-process durations, elasticity events
# ----------------------------------------------------------------------

def test_process_job_trace_accounts_for_latency():
    """Worker-side build+render durations travel in TileResult fields and are
    anchored onto the scheduler's clock: the reconstructed spans must still
    account for the job's latency, tile affinity keeping them sequential."""
    store = make_store()
    backend = ProcessPoolBackend(num_workers=2)
    with RenderServer(store, backend=backend) as server:
        jobs = [
            server.submit("lego", "dense", tile_size=TILE),
            server.submit("ficus", "dense", tile_size=TILE),
        ]
        server.run_until_idle()
        for job in jobs:
            result = server.result(job)
            trace = server.tracer.get(job)
            assert trace.state == "done"
            totals = stage_accounting(trace, result.latency_s)
            assert totals["render-tile"] > 0.0
            assert totals.get("build", 0.0) > 0.0  # workers rebuilt bundles
            workers = {
                span.attrs["worker"]
                for span in trace.spans
                if span.name == "render-tile"
            }
            assert len(workers) == 1  # affinity: one shard rendered the job
        assert server.stats().stage_breakdown["build"]["count"] >= 2


def test_process_kill_traces_redispatch_and_respawn(warm_store):
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2, fault_plan=FaultPlan(kill_worker=0, kill_after_tiles=2)
    )
    with RenderServer(store, backend=backend) as server:
        lego = server.submit("lego", "dense", tile_size=TILE)
        ficus = server.submit("ficus", "dense", tile_size=TILE)
        server.run_until_idle()
        for job in (lego, ficus):
            assert server.poll(job).state is JobState.DONE
        assert server.stats().worker_respawns >= 1
        supervisor = [e.name for e in server.tracer.supervisor_events]
        assert "respawn" in supervisor
        traced_events = [
            e.name for t in server.tracer.traces() for e in t.events
        ] + supervisor
        assert "redispatched" in traced_events
        # The direct render through a traced, healed pool stays bit-identical.
        direct = warm_store.get("lego", "dense").engine.render(
            camera_indices=(0,), chunk_size=TILE
        ).image
        assert server.result(lego).image.tobytes() == direct.tobytes()


def test_process_hedge_traces_the_hedged_event():
    store = make_store()
    backend = ProcessPoolBackend(
        num_workers=2,
        fault_plan=FaultPlan(delay_worker=1, delay_s=0.25),
        hedge_multiplier=2.0,
        hedge_min_samples=3,
    )
    with RenderServer(store, backend=backend) as server:
        fast = server.submit("lego", "dense", tile_size=TILE)
        slow = server.submit("ficus", "dense", tile_size=TILE)
        server.run_until_idle()
        for job in (fast, slow):
            assert server.poll(job).state is JobState.DONE, server.poll(job).error
        assert server.stats().hedged_tiles >= 1
        hedged = [
            event
            for trace in server.tracer.traces()
            for event in trace.events
            if event.name == "hedged"
        ] + [e for e in server.tracer.supervisor_events if e.name == "hedged"]
        assert hedged, "hedged dispatches must be annotated in traces"
        assert "hedge_worker" in hedged[0].attrs


# ----------------------------------------------------------------------
# HTTP surfaces
# ----------------------------------------------------------------------

def test_wire_json_is_nan_safe():
    body = json_body({"p50": float("nan"), "inf": float("inf"), "deep": [float("-inf")]})
    doc = strict_loads(body)
    assert doc == {"p50": None, "inf": None, "deep": [None]}
    frame = sse_event_bytes("stats", {"p95": float("nan")})
    _, _, data = frame.partition(b"data: ")
    assert strict_loads(data.strip()) == {"p95": None}


@contextlib.contextmanager
def frontend(store, **server_kwargs):
    server = RenderServer(store, **server_kwargs)
    edge = HttpRenderFrontEnd(server)
    host, port = edge.run_in_thread()
    try:
        yield server, host, port
    finally:
        edge.shutdown()
        server.close()


def test_http_stats_strict_json_before_first_completion(warm_store):
    """Satellite 1: percentiles are NaN before any job completes — the JSON
    body must serialize them as null, never as bare NaN tokens."""
    with frontend(warm_store) as (_server, host, port):

        async def scrape():
            async with RenderClient(host, port) as client:
                return await client.request("GET", "/v1/stats")

        response = asyncio.run(scrape())
    assert response.status == 200
    doc = strict_loads(response.body)  # raises on any non-JSON constant
    assert doc["server"]["latency_p50_s"] is None
    assert doc["server"]["latency_p99_s"] is None
    assert doc["edge"]["request_latency_p95_s"] is None


def test_http_trace_endpoints_round_trip(warm_store):
    with frontend(warm_store, default_tile_size=TILE) as (server, host, port):

        async def drive():
            async with RenderClient(host, port) as client:
                await client.render(scene="lego", pipeline="dense")
                job_id = server.tracer.traces()[-1].job_id
                trace = await client.request("GET", f"/v1/trace/{job_id}")
                export = await client.request("GET", "/v1/traces/export")
                missing = await client.request("GET", "/v1/trace/nope")
                metrics = await client.request("GET", "/v1/metrics")
                return job_id, trace, export, missing, metrics

        job_id, trace, export, missing, metrics = asyncio.run(drive())

    assert trace.status == 200
    doc = strict_loads(trace.body)
    assert doc["job_id"] == job_id and doc["state"] == "done"
    span_names = {span["name"] for span in doc["spans"]}
    assert {"queue", "render-tile", "reassemble", "deliver"} <= span_names
    # The HTTP edge opened the trace at request parse: the origin precedes
    # the queue span's start (submit happened after body parsing).
    queue_span = next(s for s in doc["spans"] if s["name"] == "queue")
    assert doc["origin_s"] <= queue_span["start_s"]
    # The SSE/result delivery closed the deliver span.
    deliver = next(s for s in doc["spans"] if s["name"] == "deliver")
    assert deliver["end_s"] is not None

    assert missing.status == 404

    export_doc = strict_loads(export.body)
    assert export_doc["displayTimeUnit"] == "ms"
    phases = {event["ph"] for event in export_doc["traceEvents"]}
    assert {"M", "X"} <= phases
    exported_spans = {
        e["name"] for e in export_doc["traceEvents"] if e["ph"] == "X"
    }
    assert exported_spans <= set(SPAN_NAMES)

    assert metrics.status == 200
    assert metrics.headers["content-type"] == PROMETHEUS_CONTENT_TYPE
    text = metrics.body.decode("utf-8")
    assert "repro_serve_jobs_completed_total 1" in text
    assert "# TYPE repro_edge_requests_total counter" in text
    assert "# TYPE repro_edge_request_seconds histogram" in text
