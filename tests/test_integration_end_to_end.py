"""End-to-end integration: scene -> VQRF -> SpNeRF -> images -> hardware."""

import numpy as np
import pytest

from repro.analysis.comparison import comparison_table
from repro.analysis.memory import memory_reduction_study
from repro.analysis.quality import psnr_study
from repro.core.config import SpNeRFConfig
from repro.core.pipeline import build_spnerf_from_scene
from repro.datasets.synthetic import load_scene
from repro.hardware.accelerator import SpNeRFAccelerator
from repro.hardware.baselines import GPUPlatformModel
from repro.hardware.workload import workload_from_render


@pytest.fixture(scope="module")
def fresh_bundle():
    """An independent scene/bundle (not the session fixture) exercising the
    full public API exactly the way the quickstart example does."""
    scene = load_scene("mic", resolution=32, image_size=32, num_views=2, num_samples=24)
    config = SpNeRFConfig(num_subgrids=8, hash_table_size=2048, codebook_size=64)
    return build_spnerf_from_scene(scene, config, kmeans_iterations=2)


def test_full_flow_quality_and_memory(fresh_bundle):
    quality = psnr_study([fresh_bundle], num_pixels=300, seed=0)[0]
    memory = memory_reduction_study([fresh_bundle])[0]

    assert quality.psnr_spnerf_masked > quality.psnr_spnerf_unmasked
    assert memory.reduction_factor > 1.5
    assert memory.spnerf_bytes == fresh_bundle.spnerf_model.memory_bytes()


def test_full_flow_hardware_comparison(fresh_bundle):
    workload = workload_from_render(fresh_bundle, probe_resolution=16)
    accelerator = SpNeRFAccelerator()
    report = accelerator.simulate_frame(workload)
    xnx_fps = GPUPlatformModel.by_name("xnx").fps(workload)

    assert report.fps > xnx_fps  # the whole point of the accelerator
    table = comparison_table(accelerator, [workload])
    assert table.spnerf_row["fps"] == pytest.approx(report.fps, rel=0.2)


def test_workload_statistics_transfer_to_paper_resolution(fresh_bundle):
    workload = workload_from_render(fresh_bundle, probe_resolution=16)
    assert workload.image_width == 800 and workload.image_height == 800
    assert workload.active_samples == int(
        round(workload.active_samples_per_ray * 800 * 800)
    )


def test_bitmap_masking_toggle_changes_only_quality(fresh_bundle):
    """Masking changes rendered values, never the memory footprint."""
    masked = fresh_bundle.spnerf_model.memory_breakdown()
    unmasked_bundle = build_spnerf_from_scene(
        fresh_bundle.scene,
        fresh_bundle.spnerf_model.config,
        vqrf_model=fresh_bundle.vqrf_model,
        use_bitmap_masking=False,
    )
    assert unmasked_bundle.spnerf_model.memory_breakdown() == masked


def test_decoded_scene_renders_nontrivial_image(fresh_bundle):
    from repro.nerf.renderer import VolumetricRenderer

    renderer = VolumetricRenderer(fresh_bundle.field, fresh_bundle.scene.render_config)
    image = renderer.render_image(
        fresh_bundle.scene.cameras[0],
        fresh_bundle.scene.bbox_min,
        fresh_bundle.scene.bbox_max,
    )
    # Not all background: the object must be visible through the full
    # hash-decode path.
    assert np.mean(np.any(np.abs(image - 1.0) > 0.05, axis=-1)) > 0.01
