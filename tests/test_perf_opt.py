"""Render hot-path optimisations: decode cache, cull, early termination.

The contract under test: the vertex-reuse decode cache and the empty-cell
cull are pure optimisations — images must be *bit-identical* with them on or
off — while early ray termination is an opt-in approximation bounded by its
transmittance threshold.
"""

import numpy as np
import pytest

from repro.api import (
    PipelineConfig,
    RenderEngine,
    RenderRequest,
    SpNeRFConfig,
    build_field,
    field_from_bundle,
)
from repro.core.decoding import OnlineDecoder, pack_vertex_keys
from repro.nerf.renderer import RenderConfig, RenderStats

#: Mirrors tests/conftest.py's TEST_CONFIG (import-free so the module works
#: under any pytest rootdir layout).
API_CONFIG = PipelineConfig(
    spnerf=SpNeRFConfig(num_subgrids=8, hash_table_size=1024, codebook_size=64)
)

ALL_PIPELINES = ("dense", "vqrf", "spnerf", "spnerf-nomask")


def _render_image(field, scene, **kwargs):
    return RenderEngine(field, scene).render(RenderRequest(camera_indices=(0,), **kwargs))


class TestDecodeCacheEquivalence:
    @pytest.mark.parametrize("pipeline", ALL_PIPELINES)
    def test_dedup_images_bit_identical(self, small_scene, pipeline):
        on = build_field(pipeline, small_scene, API_CONFIG)
        off = build_field(
            pipeline, small_scene, API_CONFIG.with_updates(dedup_vertices=False)
        )
        img_on = _render_image(on, small_scene).image
        img_off = _render_image(off, small_scene).image
        assert img_on.dtype == img_off.dtype
        assert np.array_equal(img_on, img_off)

    @pytest.mark.parametrize("pipeline", ("spnerf", "spnerf-nomask"))
    def test_cull_images_bit_identical(self, spnerf_bundle, small_scene, pipeline):
        culled = field_from_bundle(spnerf_bundle, pipeline, cull_empty_samples=True)
        exhaustive = field_from_bundle(spnerf_bundle, pipeline, cull_empty_samples=False)
        img_culled = _render_image(culled, small_scene).image
        img_full = _render_image(exhaustive, small_scene).image
        assert np.array_equal(img_culled, img_full)

    def test_full_pre_pr_path_bit_identical(self, spnerf_bundle, small_scene):
        """All optimisations off at once reproduces the optimised image."""
        baseline = field_from_bundle(
            spnerf_bundle, "spnerf", dedup_vertices=False, cull_empty_samples=False
        )
        baseline.accepts_encoded_dirs = False  # per-sample view encoding too
        optimised = field_from_bundle(spnerf_bundle, "spnerf")
        assert np.array_equal(
            _render_image(baseline, small_scene).image,
            _render_image(optimised, small_scene).image,
        )

    def test_decoder_output_and_logical_stats_identical(self, spnerf_bundle, rng):
        positions = spnerf_bundle.vqrf_model.positions[:64].astype(np.int64)
        repeated = positions[rng.integers(0, positions.shape[0], size=600)]
        deduped = OnlineDecoder(spnerf_bundle.spnerf_model, deduplicate=True)
        exhaustive = OnlineDecoder(spnerf_bundle.spnerf_model, deduplicate=False)
        d_a, f_a = deduped.decode_vertices(repeated)
        d_b, f_b = exhaustive.decode_vertices(repeated)
        assert np.array_equal(d_a, d_b)
        assert np.array_equal(f_a, f_b)
        # Every logical counter matches; only the physical count differs.
        for name in (
            "num_lookups",
            "num_empty_slots",
            "num_masked_by_bitmap",
            "num_codebook_hits",
            "num_true_grid_hits",
        ):
            assert getattr(deduped.stats, name) == getattr(exhaustive.stats, name)
        assert deduped.stats.num_unique_lookups <= positions.shape[0]
        assert exhaustive.stats.num_unique_lookups == repeated.shape[0]


class TestReuseCounters:
    def test_unique_fetches_bounded_and_reuse_sane(self, spnerf_bundle, small_scene):
        # Cull off isolates the decode cache: the reuse ratio is then exactly
        # "corner lookups per unique vertex", which adjacent samples push
        # well above 1 on any structured scene.
        field = field_from_bundle(spnerf_bundle, "spnerf", cull_empty_samples=False)
        result = _render_image(field, small_scene)
        stats = result.stats
        assert 0 < stats.num_unique_vertex_fetches <= stats.num_vertex_lookups
        assert 2.0 <= stats.vertex_reuse_ratio <= 8.0 * small_scene.render_config.num_samples

    def test_reuse_counters_in_summary(self, spnerf_bundle, small_scene):
        field = field_from_bundle(spnerf_bundle, "spnerf")
        summary = _render_image(field, small_scene).as_dict()
        assert summary["num_unique_vertex_fetches"] <= summary["num_vertex_lookups"]
        assert summary["vertex_reuse_ratio"] >= 1.0

    def test_dense_field_reports_no_reuse(self, small_scene):
        field = build_field("dense", small_scene, API_CONFIG)
        stats = _render_image(field, small_scene).stats
        assert stats.num_unique_vertex_fetches == stats.num_vertex_lookups
        assert stats.vertex_reuse_ratio == 1.0

    def test_stats_merge_and_default_ratio(self):
        total = RenderStats()
        total.merge(RenderStats(num_vertex_lookups=80, num_unique_vertex_fetches=20))
        total.merge(RenderStats(num_vertex_lookups=20, num_unique_vertex_fetches=5))
        assert total.num_unique_vertex_fetches == 25
        assert total.vertex_reuse_ratio == pytest.approx(4.0)
        assert RenderStats().vertex_reuse_ratio == 1.0

    def test_pack_vertex_keys_unique_and_range_guard(self, rng):
        positions = rng.integers(-50, 50, size=(500, 3)).astype(np.int64)
        keys = pack_vertex_keys(positions)
        unique_rows = np.unique(positions, axis=0).shape[0]
        assert np.unique(keys).shape[0] == unique_rows
        assert pack_vertex_keys(np.array([[0, 0, 1 << 21]], dtype=np.int64)) is None


class TestEarlyTermination:
    def test_threshold_zero_is_exhaustive_default(self):
        config = RenderConfig()
        assert config.transmittance_threshold == 0.0
        fast = config.fast()
        assert fast.transmittance_threshold > 0.0
        assert fast.num_samples == config.num_samples
        assert config.fast(transmittance_threshold=1e-2).transmittance_threshold == 1e-2

    def test_terminated_render_close_and_cheaper(self, spnerf_bundle, small_scene):
        field = field_from_bundle(spnerf_bundle, "spnerf")
        full = _render_image(field, small_scene, compare_to_reference=True)
        fast = _render_image(
            field,
            small_scene,
            compare_to_reference=True,
            transmittance_threshold=1e-3,
        )
        # The skipped tail carries at most `threshold` of the pixel energy.
        assert np.allclose(fast.image, full.image, atol=5e-3)
        assert fast.psnr[0] == pytest.approx(full.psnr[0], abs=0.5)
        assert fast.stats.num_vertex_lookups <= full.stats.num_vertex_lookups
        assert fast.stats.num_samples == full.stats.num_samples  # logical count

    def test_termination_on_dense_reference(self, small_scene):
        field = build_field("dense", small_scene, API_CONFIG)
        full = _render_image(field, small_scene)
        fast = _render_image(field, small_scene, transmittance_threshold=1e-3)
        assert np.allclose(fast.image, full.image, atol=5e-3)
